"""Shard-parallel enumeration: per-shard Phase (1), root ownership, merge.

The sharded pipeline keeps the paper's phases intact but runs Phase (1)
and Phase (3) once per shard, against each shard's small local graph:

1. **Global plan.**  Filtering and ordering run on the *source* graph
   exactly as in the unsharded pipeline — the matching order φ (and for
   the learned orderer, its features) never see shards, so φ is
   bit-identical to the unsharded oracle's.
2. **Shard materialization.**  For each ownership range, the shard's
   *seeds* are ``C(φ[0]) ∩ owned`` — root ownership: a shard enumerates
   only embeddings whose root image it owns, so every embedding is
   counted exactly once and halo vertices are excluded from root
   candidates by construction.  The local graph is the induced subgraph
   on the k-hop closure of the seeds (k = eccentricity of φ[0] in the
   query) expanded only through the union of the global candidate sets:
   every vertex of an embedding is a global candidate of some query
   vertex and lies within k candidate-hops of the root image, so the
   closure contains every vertex those embeddings can touch and nothing
   query-irrelevant.
3. **Per-shard Phase (1).**  The configured filter re-runs on the local
   graph (with local :class:`~repro.graphs.stats.GraphStats`), and the
   root column is restricted to the shard's seeds.  Completeness is
   relative to the graph the filter runs on, and every owned embedding
   exists in the local graph — so no needed vertex is pruned.
4. **Merge.**  Both engines emit matches in lexicographic order of the
   image tuple along φ; the monotone local→global id map preserves that
   order per shard, and ownership ranges are contiguous and ascending,
   so shard sequences are disjoint ascending runs.  The k-way merge of
   :func:`merge_shard_matches` therefore reproduces the unsharded
   engine's exact match sequence — including under ``match_limit``
   truncation, where the merged prefix equals the unsharded prefix.

``#enum`` is reported *per shard* (and summed): each shard's count obeys
the iterative/recursive bit-identity invariant on its own context, but
the sum exceeds the unsharded ``#enum`` by the replicated root steps and
any cross-shard halo exploration — sharding trades bounded per-shard
memory for a little repeated work, it does not change what is found.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.partition import GraphShard, ShardedGraph, khop_closure
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.context import MatchingContext

__all__ = [
    "ShardOutcome",
    "ShardRun",
    "ShardedMatchStream",
    "build_shard_runs",
    "candidate_union_mask",
    "merge_shard_matches",
    "remap_matches",
]


@dataclass(frozen=True)
class ShardOutcome:
    """Per-shard slice of a sharded enumeration's accounting."""

    shard_id: int
    num_matches: int
    num_enumerations: int
    elapsed: float
    timed_out: bool
    limit_reached: bool


@dataclass
class ShardRun:
    """One shard's Phase (1) product, ready for enumeration.

    ``context`` is ``None`` for shards with no owned root candidates —
    they cannot root any embedding and are skipped entirely (their
    ``ShardPlan`` still records the empty seed set).
    """

    shard: GraphShard | None
    context: MatchingContext | None
    root_candidates: int
    filter_time: float


def candidate_union_mask(num_vertices: int, candidates: CandidateSets) -> np.ndarray:
    """Boolean mask of data vertices appearing in *any* candidate set.

    The halo closure expands only through this mask: by filter
    completeness every embedding vertex is a global candidate of its
    query vertex, so restricting the BFS to candidates loses no
    embedding while shrinking halos to the query-relevant subgraph.
    """
    mask = np.zeros(num_vertices, dtype=bool)
    for u in range(candidates.num_query_vertices):
        mask[candidates.array(u)] = True
    return mask


def build_shard_runs(
    query: Graph,
    sharded: ShardedGraph,
    candidates: CandidateSets,
    root: int,
    ecc: int,
    candidate_filter: CandidateFilter,
    needs_space: bool,
) -> list[ShardRun]:
    """Materialize every shard and run Phase (1) on each local graph.

    Returns one :class:`ShardRun` per ownership range, in shard order.
    ``candidates`` are the *global* Phase (1) sets (they seed the
    closures); ``ecc`` is the eccentricity of ``root`` in ``query``.
    The candidate-space build (when ``needs_space``) is billed into the
    run's ``filter_time``, mirroring the unsharded engine's billing.
    """
    allowed = candidate_union_mask(sharded.source.num_vertices, candidates)
    root_global = candidates.array(root)
    runs: list[ShardRun] = []
    for shard_id, (lo, hi) in enumerate(sharded.ranges):
        t0 = time.perf_counter()
        start = int(np.searchsorted(root_global, lo, side="left"))
        stop = int(np.searchsorted(root_global, hi, side="left"))
        seeds = root_global[start:stop]
        if seeds.size == 0:
            runs.append(ShardRun(None, None, 0, time.perf_counter() - t0))
            continue
        keep = khop_closure(sharded.source, seeds, ecc, allowed)
        shard = sharded.extract(shard_id, keep)
        local_candidates = candidate_filter.filter(
            query, shard.graph, GraphStats(shard.graph)
        )
        # Root ownership: only owned seeds may root an embedding here.
        local_candidates = local_candidates.restricted(root, shard.to_local(seeds))
        context = MatchingContext(query, shard.graph, local_candidates)
        if needs_space and not local_candidates.has_empty():
            context.ensure_space()
        runs.append(
            ShardRun(shard, context, int(seeds.size), time.perf_counter() - t0)
        )
    return runs


def remap_matches(
    matches: tuple[tuple[int, ...], ...], shard: GraphShard
) -> list[tuple[int, ...]]:
    """Translate local-id embeddings into global ids (one gather)."""
    if not matches:
        return []
    arr = shard.to_global[np.asarray(matches, dtype=np.int64)]
    return [tuple(int(v) for v in row) for row in arr]


def merge_shard_matches(
    per_shard: list[list[tuple[int, ...]]], order: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """K-way merge of per-shard match lists into the canonical sequence.

    The sort key is the image tuple along ``order`` — the lexicographic
    emission order of both engines.  With contiguous ascending ownership
    ranges the shard runs are already disjoint ascending blocks, so this
    degenerates to concatenation; the merge keeps the canonical-sequence
    guarantee independent of the range layout.
    """
    positions = [int(u) for u in order]

    def key(match: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(match[u] for u in positions)

    return list(heapq.merge(*per_shard, key=key))


class ShardedMatchStream:
    """Lazy sharded enumeration with :class:`MatchStream` semantics.

    Drives the per-shard streams *sequentially in shard order* — which,
    by the merge argument above, yields embeddings in exactly the
    canonical global sequence — remapping each pulled match to global
    ids.  A global ``match_limit`` is threaded through as each shard's
    remaining budget, so a consumer stopping after ``k`` matches never
    pays for later shards; the matches yielded are bit-identical to the
    first ``k`` of the unsharded stream.  ``#enum`` reflects this
    sequential, budgeted traversal (per-shard root steps included); a
    batch sharded execution explores every shard under the full limit,
    so its summed ``#enum`` can exceed the stream's.

    The counter surface (``num_matches`` / ``num_enumerations`` /
    ``timed_out`` / ``limit_reached`` / ``exhausted`` / ``elapsed`` /
    ``result()`` / ``close()``) duck-types :class:`~repro.matching.
    enumeration.MatchStream`, so service-layer wrappers proxy it
    unchanged.
    """

    def __init__(self, enumerator, runs: list[ShardRun], order, match_limit):
        self._enumerator = enumerator
        self._order = [int(u) for u in order]
        self._pending = [
            run for run in runs
            if run.context is not None and not run.context.candidates.has_empty()
        ]
        self._match_limit = match_limit
        self._start = time.perf_counter()
        self._elapsed = 0.0
        self._stream = None
        self._shard: GraphShard | None = None
        self._found = 0
        self._enum_done = 0
        self._timed_out = False
        self._limit_reached = False
        self._finished = False

    def __iter__(self) -> "ShardedMatchStream":
        return self

    def __next__(self) -> tuple[int, ...]:
        while True:
            if self._finished:
                raise StopIteration
            if self._stream is None:
                if not self._pending:
                    self._finish()
                    raise StopIteration
                remaining = None
                if self._match_limit is not None:
                    remaining = self._match_limit - self._found
                    if remaining <= 0:
                        self._limit_reached = True
                        self._finish()
                        raise StopIteration
                run = self._pending.pop(0)
                self._shard = run.shard
                self._stream = self._enumerator.stream_context(
                    run.context, self._order, remaining
                )
            try:
                match = next(self._stream)
            except StopIteration:
                self._retire_stream()
                continue
            shard = self._shard
            self._found += 1
            self._elapsed = time.perf_counter() - self._start
            if self._match_limit is not None and self._found >= self._match_limit:
                self._limit_reached = True
                self._finish()
            elif self._stream.exhausted:
                self._retire_stream()
            return tuple(int(shard.to_global[v]) for v in match)

    def _retire_stream(self) -> None:
        """Fold the finished shard stream's counters into the totals."""
        if self._stream is not None:
            self._enum_done += self._stream.num_enumerations
            self._timed_out = self._timed_out or self._stream.timed_out
            self._stream.close()
            self._stream = None
            self._shard = None

    def _finish(self) -> None:
        if not self._finished:
            self._retire_stream()
            self._finished = True
            self._elapsed = time.perf_counter() - self._start

    def close(self) -> None:
        """Stop the search early and release the active shard stream."""
        self._finish()

    @property
    def num_matches(self) -> int:
        """Embeddings yielded so far (across shards)."""
        return self._found

    @property
    def num_enumerations(self) -> int:
        """``#enum`` explored so far, summed over shards."""
        live = self._stream.num_enumerations if self._stream is not None else 0
        return self._enum_done + live

    @property
    def timed_out(self) -> bool:
        """Whether any shard's deadline fired."""
        if self._stream is not None and self._stream.timed_out:
            return True
        return self._timed_out

    @property
    def limit_reached(self) -> bool:
        """Whether the global match limit stopped the stream."""
        return self._limit_reached

    @property
    def exhausted(self) -> bool:
        """Whether the stream is finished (by any cause)."""
        return self._finished

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds from stream creation to the last pull."""
        return self._elapsed

    def result(self):
        """The stream's outcome as a batch-shaped result."""
        from repro.matching.enumeration import EnumerationResult

        return EnumerationResult(
            num_matches=self._found,
            num_enumerations=self.num_enumerations,
            elapsed=self._elapsed,
            timed_out=self.timed_out,
            limit_reached=self._limit_reached,
        )
