"""RI ordering (Bonnici et al. [16]) — the state-of-the-art heuristic.

RI uses only the structure of the query graph (Sec. II-C):

* start from the vertex with maximum degree;
* repeatedly add the unordered vertex with the most neighbours already in
  ``φ_t``;
* break ties by (1) ``|u_neig|`` — the number of ordered vertices that are
  adjacent to ``u`` *and* have a neighbour outside ``φ_t``; then (2)
  ``|u_unv|`` — the number of ``u``'s neighbours that are unordered and not
  adjacent to any ordered vertex; remaining ties are broken arbitrarily
  (here: by vertex id for determinism, or uniformly when an ``rng`` is
  supplied, matching the paper's observation that RI "selects randomly").
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer

__all__ = ["RIOrderer"]


class RIOrderer(Orderer):
    """Structure-only greedy ordering of RI."""

    name = "ri"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        degrees = query.degrees

        def pick(choices: list[int], keys: list[tuple]) -> int:
            best = max(keys)
            tied = [c for c, k in zip(choices, keys) if k == best]
            if len(tied) > 1 and rng is not None:
                return int(tied[rng.integers(0, len(tied))])
            return min(tied)

        first_choices = list(range(n))
        first_keys = [(int(degrees[u]),) for u in first_choices]
        phi = [pick(first_choices, first_keys)]
        ordered: set[int] = set(phi)

        while len(phi) < n:
            remaining = [u for u in range(n) if u not in ordered]
            keys = []
            for u in remaining:
                nbrs_u = query.neighbor_set(u)
                ordered_nbrs = len(nbrs_u & ordered)
                u_neig = sum(
                    1
                    for w in ordered
                    if w in nbrs_u
                    and any(x not in ordered for x in query.neighbor_set(w))
                )
                u_unv = sum(
                    1
                    for x in nbrs_u
                    if x not in ordered
                    and not (query.neighbor_set(x) & ordered)
                )
                keys.append((ordered_nbrs, u_neig, u_unv))
            # Prefer connected extensions: candidates with ordered_nbrs == 0
            # are only taken when no connected vertex remains.
            connected = [
                (u, k) for u, k in zip(remaining, keys) if k[0] > 0
            ]
            if connected:
                remaining = [u for u, _ in connected]
                keys = [k for _, k in connected]
            nxt = pick(remaining, keys)
            phi.append(nxt)
            ordered.add(nxt)
        return phi
