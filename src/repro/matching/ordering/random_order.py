"""Uniformly random connected matching order — the weakest baseline.

Useful as a control in ablations: every other strategy should beat it.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer, connected_extension

__all__ = ["RandomOrderer"]


class RandomOrderer(Orderer):
    """Random connected order (seedable for reproducibility)."""

    name = "random"

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed)

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        rng = rng if rng is not None else self._rng
        n = query.num_vertices
        if n == 0:
            return []
        start = int(rng.integers(0, n))
        phi = [start]
        remaining = set(range(n)) - {start}
        while remaining:
            frontier = connected_extension(query, phi, remaining)
            nxt = frontier[int(rng.integers(0, len(frontier)))]
            phi.append(nxt)
            remaining.discard(nxt)
        return phi
