"""Matching-order generation interface (Phase 2 of Algorithm 1).

An :class:`Orderer` maps a query graph (plus, depending on the strategy,
the data graph, its statistics and the candidate sets) to a matching order
``φ`` — a permutation of ``V(q)`` (Def. II.3).  All orderers in this
package produce *connected* orders when the query is connected, matching
the constraint shared by the heuristics the paper compares and by the
RL action space (Sec. III-D).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.graphs.validation import check_order
from repro.matching.candidates import CandidateSets
from repro.matching.context import MatchingContext

__all__ = ["Orderer", "connected_extension"]


class Orderer(abc.ABC):
    """Interface for matching-order generation strategies."""

    #: Short identifier used in benchmark tables.
    name: str = "base"

    @abc.abstractmethod
    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """Return a matching order ``φ`` for ``query``."""

    def order_context(
        self,
        context: MatchingContext,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """:meth:`order` over shared Phase (1) artifacts.

        The matching engine calls this with the run's
        :class:`MatchingContext` so strategies that enumerate (e.g. the
        optimal-order sweep) reuse the already-built candidate space
        instead of re-deriving it.  The default simply unpacks the
        context into the positional :meth:`order` signature.
        """
        return self.order(
            context.query, context.data, context.candidates, context.stats, rng
        )

    def checked_order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """Like :meth:`order` but validates the result before returning it."""
        phi = self.order(query, data, candidates, stats, rng)
        check_order(query, phi)
        return phi


def connected_extension(
    query: Graph, ordered: Sequence[int], remaining: set[int]
) -> list[int]:
    """Vertices of ``remaining`` adjacent to ``ordered`` (the action space).

    Falls back to all of ``remaining`` when nothing is adjacent (only
    possible for disconnected queries), so greedy loops always progress.
    """
    ordered_set = set(ordered)
    frontier = [
        u
        for u in remaining
        if any(v in ordered_set for v in query.neighbor_set(u))
    ]
    return frontier if frontier else sorted(remaining)
