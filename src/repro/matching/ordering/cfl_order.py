"""CFL path-based ordering (Bi et al. [11]).

CFL decomposes the query's BFS tree (rooted at the most selective vertex,
``argmin |C(u)|/d(u)``) into root-to-leaf paths and matches paths in
ascending order of their estimated embedding count, postponing large
Cartesian products.  The estimate used here is the product of candidate
set sizes along the path (the classical independence estimate); CFL's
exact path-cardinality bookkeeping refines the same quantity, and the
*shape* of the resulting order — selective core first, bushy cheap paths
last — is preserved.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer

__all__ = ["CFLOrderer"]


class CFLOrderer(Orderer):
    """BFS-tree path decomposition ordering of CFL."""

    name = "cfl"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        if candidates is None:
            raise FilterError("CFL ordering needs candidate sets")

        root = min(
            range(n),
            key=lambda u: (candidates.size(u) / max(query.degree(u), 1), u),
        )
        parent = {root: None}
        bfs_order = [root]
        frontier = deque([root])
        while frontier:
            u = frontier.popleft()
            for v in sorted(int(x) for x in query.neighbors(u)):
                if v not in parent:
                    parent[v] = u
                    bfs_order.append(v)
                    frontier.append(v)
        # Disconnected leftovers become children of the root conceptually.
        for v in range(n):
            if v not in parent:
                parent[v] = root
                bfs_order.append(v)

        children: dict[int, list[int]] = {u: [] for u in range(n)}
        for v, p in parent.items():
            if p is not None:
                children[p].append(v)

        leaves = [u for u in range(n) if not children[u]]
        paths = []
        for leaf in leaves:
            path = []
            node: int | None = leaf
            while node is not None:
                path.append(node)
                node = parent[node]
            path.reverse()  # root .. leaf
            cost = 1.0
            for u in path:
                cost *= max(candidates.size(u), 1)
            paths.append((cost, path))
        paths.sort(key=lambda item: (item[0], item[1]))

        phi: list[int] = []
        seen: set[int] = set()
        for _, path in paths:
            for u in path:
                if u not in seen:
                    phi.append(u)
                    seen.add(u)
        return phi
