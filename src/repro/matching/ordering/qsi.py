"""QuickSI ordering (Shang et al. [15]) — infrequent-edge first.

QuickSI converts the query into a weighted graph where each edge's weight
is the frequency of its label pair among data edges, then orders vertices
along a minimum spanning tree grown from the cheapest edge (Prim-style):
rare edges are matched first because they prune the most.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer

__all__ = ["QSIOrderer"]


class QSIOrderer(Orderer):
    """Infrequent-edge-first spanning-tree ordering of QuickSI."""

    name = "qsi"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        if n == 1:
            return [0]
        if data is None and stats is None:
            raise FilterError("QSI ordering needs the data graph or its stats")
        if stats is None:
            stats = GraphStats(data)

        def weight(u: int, v: int) -> int:
            return stats.edge_label_frequency(query.label(u), query.label(v))

        edges = list(query.edges())
        if not edges:
            # Edgeless query: order by rarity of vertex label.
            return sorted(
                range(n), key=lambda u: stats.label_frequency(query.label(u))
            )

        # Seed with the globally cheapest edge, orienting its endpoints by
        # rarer vertex label first.
        start_edge = min(edges, key=lambda e: (weight(*e), e))
        a, b = start_edge
        if stats.label_frequency(query.label(b)) < stats.label_frequency(
            query.label(a)
        ):
            a, b = b, a
        phi = [a, b]
        ordered = {a, b}

        while len(phi) < n:
            best: tuple[int, int, int] | None = None  # (weight, vertex, anchor)
            for u in range(n):
                if u in ordered:
                    continue
                for w in query.neighbor_set(u):
                    if w in ordered:
                        cand = (weight(u, w), u, w)
                        if best is None or cand < best:
                            best = cand
            if best is None:
                # Disconnected query: start a new component at the rarest label.
                rest = [u for u in range(n) if u not in ordered]
                nxt = min(
                    rest, key=lambda u: (stats.label_frequency(query.label(u)), u)
                )
            else:
                nxt = best[1]
            phi.append(nxt)
            ordered.add(nxt)
        return phi
