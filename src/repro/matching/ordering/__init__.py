"""Matching-order generation strategies (Phase 2 of Algorithm 1)."""

from repro.matching.ordering.base import Orderer, connected_extension
from repro.matching.ordering.cfl_order import CFLOrderer
from repro.matching.ordering.gql_order import GQLOrderer
from repro.matching.ordering.optimal import OptimalOrderer, connected_permutations
from repro.matching.ordering.qsi import QSIOrderer
from repro.matching.ordering.random_order import RandomOrderer
from repro.matching.ordering.ri import RIOrderer
from repro.matching.ordering.veq_order import VEQOrderer, nec_classes
from repro.matching.ordering.vf2pp import VF2PPOrderer

ORDERERS = {
    cls.name: cls
    for cls in (
        QSIOrderer,
        RIOrderer,
        VF2PPOrderer,
        GQLOrderer,
        CFLOrderer,
        VEQOrderer,
        RandomOrderer,
        OptimalOrderer,
    )
}

__all__ = [
    "CFLOrderer",
    "GQLOrderer",
    "ORDERERS",
    "OptimalOrderer",
    "Orderer",
    "QSIOrderer",
    "RIOrderer",
    "RandomOrderer",
    "VEQOrderer",
    "VF2PPOrderer",
    "connected_extension",
    "connected_permutations",
    "nec_classes",
]
