"""GraphQL ordering — greedy smallest-candidate-set first.

GraphQL picks as the next query vertex the one with the smallest candidate
set ``|C(u)|`` among the connected extension of the current order (a
left-deep join ordering over candidate cardinalities).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer, connected_extension

__all__ = ["GQLOrderer"]


class GQLOrderer(Orderer):
    """Candidate-cardinality greedy ordering of GraphQL."""

    name = "gql"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        if candidates is None:
            raise FilterError("GraphQL ordering needs candidate sets")

        start = min(range(n), key=lambda u: (candidates.size(u), -query.degree(u), u))
        phi = [start]
        remaining = set(range(n)) - {start}
        while remaining:
            frontier = connected_extension(query, phi, remaining)
            nxt = min(
                frontier, key=lambda u: (candidates.size(u), -query.degree(u), u)
            )
            phi.append(nxt)
            remaining.discard(nxt)
        return phi
