"""VF2++ ordering (Jüttner & Madarasi [17]) — infrequent-label first.

VF2++ orders query vertices in BFS fashion, preferring at each step the
vertex with (1) most already-ordered neighbours, (2) rarest label in the
data graph, (3) largest degree.  The starting vertex minimizes label
frequency (ties: max degree).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer, connected_extension

__all__ = ["VF2PPOrderer"]


class VF2PPOrderer(Orderer):
    """Label-rarity-driven BFS ordering of VF2++."""

    name = "vf2pp"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        if data is None and stats is None:
            raise FilterError("VF2++ ordering needs the data graph or its stats")
        if stats is None:
            stats = GraphStats(data)

        def label_freq(u: int) -> int:
            return stats.label_frequency(query.label(u))

        start = min(range(n), key=lambda u: (label_freq(u), -query.degree(u), u))
        phi = [start]
        ordered = {start}
        remaining = set(range(n)) - ordered

        while remaining:
            frontier = connected_extension(query, phi, remaining)
            nxt = min(
                frontier,
                key=lambda u: (
                    -len(query.neighbor_set(u) & ordered),
                    label_freq(u),
                    -query.degree(u),
                    u,
                ),
            )
            phi.append(nxt)
            ordered.add(nxt)
            remaining.discard(nxt)
        return phi
