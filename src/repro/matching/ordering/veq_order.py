"""VEQ-style ordering (Kim et al. [20]).

VEQ orders by candidate-set size adjusted by neighbour equivalence classes
(NEC): degree-one vertices with the same label and the same neighbour are
interchangeable, so VEQ weights their candidate size by the class size
(the class consumes ``|class|`` candidates from the same pool) and defers
them, reducing redundancy in the search space (Sec. II-C).

We implement: greedy connected extension minimizing the effective
candidate size ``|C(u)| / nec(u)`` where ``nec(u)`` is the size of ``u``'s
NEC class (1 for non-leaf vertices), with leaf classes kept adjacent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.ordering.base import Orderer, connected_extension

__all__ = ["VEQOrderer", "nec_classes"]


def nec_classes(query: Graph) -> list[list[int]]:
    """Neighbour equivalence classes of degree-one query vertices.

    Two degree-one vertices are equivalent iff they share the same label
    and the same (single) neighbour.
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for u in query.vertices():
        if query.degree(u) == 1:
            neighbour = int(query.neighbors(u)[0])
            groups.setdefault((query.label(u), neighbour), []).append(u)
    return list(groups.values())


class VEQOrderer(Orderer):
    """Candidate-size ordering with NEC-aware weighting."""

    name = "veq"

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        n = query.num_vertices
        if n == 0:
            return []
        if candidates is None:
            raise FilterError("VEQ ordering needs candidate sets")

        class_of: dict[int, int] = {}
        class_size: dict[int, int] = {}
        for idx, members in enumerate(nec_classes(query)):
            for u in members:
                class_of[u] = idx
                class_size[u] = len(members)

        def effective_size(u: int) -> float:
            return candidates.size(u) / class_size.get(u, 1)

        start = min(range(n), key=lambda u: (effective_size(u), -query.degree(u), u))
        phi = [start]
        remaining = set(range(n)) - {start}
        while remaining:
            frontier = connected_extension(query, phi, remaining)
            # Keep NEC siblings adjacent: if the last added vertex belongs
            # to a class with remaining members in the frontier, take one.
            last = phi[-1]
            if last in class_of:
                siblings = [
                    u
                    for u in frontier
                    if class_of.get(u) == class_of[last]
                ]
                if siblings:
                    nxt = min(siblings)
                    phi.append(nxt)
                    remaining.discard(nxt)
                    continue
            nxt = min(
                frontier,
                key=lambda u: (effective_size(u), -query.degree(u), u),
            )
            phi.append(nxt)
            remaining.discard(nxt)
        return phi
