"""Optimal matching order by exhaustive permutation search (Fig. 6).

The paper's spectrum analysis (Sec. IV-C) obtains the optimal order by
generating *all* permutations of the query vertices, running the same
filtering/enumeration pipeline for each, and keeping the permutation with
the minimum enumeration number.  Restricting the search to connected
orders is safe: for a connected query, any order can be rearranged into a
connected one whose enumeration tree is no larger (a disconnected prefix
only inserts Cartesian products).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateSets
from repro.matching.context import MatchingContext
from repro.matching.enumeration import Enumerator
from repro.matching.ordering.base import Orderer

__all__ = ["OptimalOrderer", "connected_permutations"]


def connected_permutations(query: Graph) -> Iterator[list[int]]:
    """Yield every connected permutation of ``V(q)`` (DFS over prefixes)."""
    n = query.num_vertices
    if n == 0:
        yield []
        return

    prefix: list[int] = []
    in_prefix: set[int] = set()

    def extend() -> Iterator[list[int]]:
        if len(prefix) == n:
            yield list(prefix)
            return
        if prefix:
            frontier = sorted(
                u
                for u in range(n)
                if u not in in_prefix
                and (query.neighbor_set(u) & in_prefix)
            )
            if not frontier:  # disconnected query: allow any remaining vertex
                frontier = sorted(u for u in range(n) if u not in in_prefix)
        else:
            frontier = list(range(n))
        for u in frontier:
            prefix.append(u)
            in_prefix.add(u)
            yield from extend()
            prefix.pop()
            in_prefix.discard(u)

    yield from extend()


class OptimalOrderer(Orderer):
    """Brute-force optimal orderer minimizing ``#enum``.

    Parameters
    ----------
    match_limit / time_limit:
        Limits applied to each candidate permutation's enumeration run
        (mirrors the evaluation pipeline the order will be used in).
    max_permutations:
        Safety cap; permutations beyond it are skipped (the best order
        found so far is returned).  ``None`` = no cap.
    seed_orderers:
        Orderers whose outputs are evaluated *before* the permutation
        stream.  With a permutation cap this guarantees the result is at
        least as good as every seeded heuristic — the capped search can
        then only improve on them.
    """

    name = "optimal"

    def __init__(
        self,
        match_limit: int | None = 100_000,
        time_limit: float | None = None,
        max_permutations: int | None = None,
        seed_orderers: list[Orderer] | None = None,
    ):
        self.match_limit = match_limit
        self.time_limit = time_limit
        self.max_permutations = max_permutations
        self.seed_orderers = seed_orderers if seed_orderers is not None else []
        #: ``#enum`` of the best order found by the last :meth:`order` call.
        self.last_best_enum: int | None = None

    def order(
        self,
        query: Graph,
        data: Graph | None = None,
        candidates: CandidateSets | None = None,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        if data is None or candidates is None:
            raise FilterError("optimal ordering needs the data graph and candidates")
        return self.order_context(
            MatchingContext(query, data, candidates, stats), rng
        )

    def order_context(
        self,
        context: MatchingContext,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """Sweep permutations reusing the context's shared candidate space.

        Every candidate permutation is enumerated against the same
        :class:`MatchingContext`, so the per-edge index is built once for
        the whole sweep rather than once per permutation.
        """
        query = context.query
        enumerator = Enumerator(
            match_limit=self.match_limit,
            time_limit=self.time_limit,
            record_matches=False,
        )
        best_order: list[int] | None = None
        best_enum: int | None = None

        def consider(phi: list[int]) -> None:
            nonlocal best_order, best_enum
            result = enumerator.run_context(context, phi)
            if best_enum is None or result.num_enumerations < best_enum:
                best_enum = result.num_enumerations
                best_order = phi

        for orderer in self.seed_orderers:
            consider(orderer.order_context(context, rng))
        for count, phi in enumerate(connected_permutations(query)):
            if self.max_permutations is not None and count >= self.max_permutations:
                break
            consider(phi)
        if best_order is None:  # pragma: no cover - empty query only
            best_order = list(range(query.num_vertices))
            best_enum = 0
        self.last_best_enum = best_enum
        return best_order
