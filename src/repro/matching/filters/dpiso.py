"""DP-iso / VEQ-style DAG dynamic-programming filter.

DP-iso (Han et al., SIGMOD'19) and VEQ (Kim et al., SIGMOD'21) build a
query DAG by directing edges from a root outward (BFS order, ties broken
by rarer label then higher degree) and refine candidates with dynamic
programming alternating between the DAG and its reverse: ``v`` survives in
``C(u)`` only if for *every* DAG parent (resp. child) ``u'`` of ``u`` some
candidate of ``u'`` is adjacent to ``v``.  Iterating both directions to a
fixpoint yields the "candidate space" the two papers search.

Completeness: any embedding maps each DAG-adjacent pair to an adjacent
data pair, so a vertex violating the rule is in no embedding.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.filters.ldf import LDFFilter

__all__ = ["DPisoFilter"]


class DPisoFilter(CandidateFilter):
    """DAG-DP candidate refinement (DP-iso / VEQ style)."""

    name = "dpiso"

    def __init__(self, max_rounds: int = 3):
        self.max_rounds = max_rounds

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        stats = self._require_stats(data, stats)
        base = LDFFilter().filter(query, data, stats)
        candidate_sets: list[set[int]] = [set(base.get(u)) for u in query.vertices()]

        order = self._dag_order(query, stats, base)
        position = {u: i for i, u in enumerate(order)}
        parents: list[list[int]] = [[] for _ in query.vertices()]
        children: list[list[int]] = [[] for _ in query.vertices()]
        for u in query.vertices():
            for v in query.neighbors(u):
                v = int(v)
                if position[u] < position[v]:
                    children[u].append(v)
                    parents[v].append(u)

        for _ in range(self.max_rounds):
            changed = self._sweep(query, data, order, parents, candidate_sets)
            changed |= self._sweep(
                query, data, list(reversed(order)), children, candidate_sets
            )
            if not changed:
                break
        return CandidateSets(candidate_sets)

    @staticmethod
    def _dag_order(query: Graph, stats: GraphStats, base: CandidateSets) -> list[int]:
        """BFS order from the most selective root (rarest label, max degree)."""

        def root_key(u: int) -> tuple[int, int]:
            return (base.size(u), -query.degree(u))

        root = min(query.vertices(), key=root_key)
        order = [root]
        seen = {root}
        frontier = [root]
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                nbrs = sorted(
                    (int(v) for v in query.neighbors(u) if int(v) not in seen),
                    key=root_key,
                )
                for v in nbrs:
                    seen.add(v)
                    order.append(v)
                    next_frontier.append(v)
            frontier = next_frontier
        order.extend(u for u in query.vertices() if u not in seen)
        return order

    @staticmethod
    def _sweep(
        query: Graph,
        data: Graph,
        order: list[int],
        constrainers: list[list[int]],
        candidate_sets: list[set[int]],
    ) -> bool:
        changed = False
        for u in order:
            if not constrainers[u]:
                continue
            removals = []
            for v in candidate_sets[u]:
                v_nbrs = data.neighbor_set(v)
                for u_prime in constrainers[u]:
                    cand = candidate_sets[u_prime]
                    if not any(w in cand for w in v_nbrs):
                        removals.append(v)
                        break
            if removals:
                candidate_sets[u].difference_update(removals)
                changed = True
        return changed
