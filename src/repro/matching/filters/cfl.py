"""CFL-style BFS-tree candidate filter.

CFL (Bi et al., SIGMOD'16) builds a BFS tree of the query rooted at the
vertex minimizing ``|C(u)| / d(u)`` and refines candidates top-down then
bottom-up along tree edges: a candidate of ``u`` survives only if every
tree-neighbour ``u'`` has an adjacent candidate in ``C(u')``.  We run the
two sweeps over *all* query edges between adjacent BFS levels (a superset
of the tree edges), which prunes at least as much while remaining complete:
any embedding maps adjacent query vertices to adjacent data vertices.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.filters.nlf import NLFFilter

__all__ = ["CFLFilter"]


class CFLFilter(CandidateFilter):
    """BFS-tree top-down / bottom-up refinement filter."""

    name = "cfl"

    def __init__(self, sweeps: int = 2):
        self.sweeps = sweeps

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        stats = self._require_stats(data, stats)
        base = NLFFilter().filter(query, data, stats)
        candidate_sets: list[set[int]] = [set(base.get(u)) for u in query.vertices()]

        root = self._select_root(query, base, stats)
        levels = self._bfs_levels(query, root)

        for _ in range(self.sweeps):
            changed = False
            # Top-down: parents constrain children.
            for level in levels[1:]:
                for u in level:
                    changed |= self._refine_vertex(query, data, u, candidate_sets)
            # Bottom-up: children constrain parents.
            for level in reversed(levels[:-1]):
                for u in level:
                    changed |= self._refine_vertex(query, data, u, candidate_sets)
            if not changed:
                break
        return CandidateSets(candidate_sets)

    @staticmethod
    def _select_root(query: Graph, base: CandidateSets, stats: GraphStats) -> int:
        def score(u: int) -> float:
            deg = max(query.degree(u), 1)
            return base.size(u) / deg

        return min(query.vertices(), key=score)

    @staticmethod
    def _bfs_levels(query: Graph, root: int) -> list[list[int]]:
        seen = {root}
        levels = [[root]]
        frontier = deque([root])
        current: list[int] = []
        while frontier:
            next_frontier: deque[int] = deque()
            current = []
            for u in frontier:
                for v in query.neighbors(u):
                    v = int(v)
                    if v not in seen:
                        seen.add(v)
                        current.append(v)
                        next_frontier.append(v)
            if current:
                levels.append(current)
            frontier = next_frontier
        # Disconnected queries: append remaining vertices as their own level.
        rest = [u for u in query.vertices() if u not in seen]
        if rest:
            levels.append(rest)
        return levels

    @staticmethod
    def _refine_vertex(
        query: Graph, data: Graph, u: int, candidate_sets: list[set[int]]
    ) -> bool:
        """Drop candidates of ``u`` with no adjacent candidate for some neighbour."""
        removals = []
        for v in candidate_sets[u]:
            v_nbrs = data.neighbor_set(v)
            for u_prime in query.neighbors(u):
                cand = candidate_sets[int(u_prime)]
                if not any(w in cand for w in v_nbrs):
                    removals.append(v)
                    break
        if removals:
            candidate_sets[u].difference_update(removals)
            return True
        return False
