"""GraphQL candidate filter — local pruning + global refinement.

This is the filter used by Hybrid (Sec. II-C) and therefore by RL-QVO:

1. *Local pruning*: the profile of a vertex is the sorted multiset of
   labels of its closed neighbourhood.  ``v`` enters ``C(u)`` if the
   profile of ``u`` is a sub-multiset of the profile of ``v`` (the paper
   phrases this as a lexicographic sub-sequence test — equivalent for
   sorted label sequences).
2. *Global refinement*: repeatedly drop ``v`` from ``C(u)`` when the
   bipartite graph between ``N(u)`` and ``N(v)`` (edge iff ``v' ∈ C(u')``)
   has no matching saturating ``N(u)``, until a fixpoint or a bounded
   number of rounds.

Both steps only remove vertices that cannot take part in any embedding, so
completeness is preserved.
"""

from __future__ import annotations

from collections import Counter

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.bipartite import has_semi_perfect_matching
from repro.matching.candidates import CandidateFilter, CandidateSets

__all__ = ["GQLFilter"]


def _is_sub_multiset(small: Counter[int], big: Counter[int]) -> bool:
    return all(big.get(lab, 0) >= cnt for lab, cnt in small.items())


class GQLFilter(CandidateFilter):
    """GraphQL profile filter with semi-perfect-matching refinement.

    Parameters
    ----------
    refinement_rounds:
        Maximum number of global-refinement sweeps (GraphQL uses a small
        constant; the fixpoint is usually reached in 2–3 rounds).
    """

    name = "gql"

    def __init__(self, refinement_rounds: int = 3):
        self.refinement_rounds = refinement_rounds

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        stats = self._require_stats(data, stats)

        query_profiles = [
            Counter([query.label(u)] + query.neighbor_labels(u))
            for u in query.vertices()
        ]
        data_profiles = stats.profiles

        candidate_sets: list[set[int]] = []
        for u in query.vertices():
            lab, deg = query.label(u), query.degree(u)
            profile_u = query_profiles[u]
            survivors = {
                int(v)
                for v in data.vertices_with_label(lab)
                if data.degree(int(v)) >= deg
                and _is_sub_multiset(profile_u, Counter(data_profiles[int(v)]))
            }
            candidate_sets.append(survivors)

        for _ in range(self.refinement_rounds):
            changed = self._refine_once(query, data, candidate_sets)
            if not changed:
                break
        return CandidateSets(candidate_sets)

    def _refine_once(
        self, query: Graph, data: Graph, candidate_sets: list[set[int]]
    ) -> bool:
        """One sweep of global refinement; returns whether anything changed."""
        changed = False
        for u in query.vertices():
            query_nbrs = [int(x) for x in query.neighbors(u)]
            if not query_nbrs:
                continue
            removals = []
            for v in candidate_sets[u]:
                if not self._semi_perfect(query_nbrs, data, v, candidate_sets):
                    removals.append(v)
            if removals:
                candidate_sets[u].difference_update(removals)
                changed = True
        return changed

    @staticmethod
    def _semi_perfect(
        query_nbrs: list[int],
        data: Graph,
        v: int,
        candidate_sets: list[set[int]],
    ) -> bool:
        data_nbrs = [int(x) for x in data.neighbors(v)]
        index = {w: i for i, w in enumerate(data_nbrs)}
        adjacency = []
        for u_prime in query_nbrs:
            cand = candidate_sets[u_prime]
            row = [index[w] for w in data_nbrs if w in cand]
            if not row:
                return False
            adjacency.append(row)
        return has_semi_perfect_matching(adjacency, len(data_nbrs))
