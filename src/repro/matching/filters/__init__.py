"""Candidate filtering strategies (Phase 1 of Algorithm 1)."""

from repro.matching.filters.cfl import CFLFilter
from repro.matching.filters.dpiso import DPisoFilter
from repro.matching.filters.gql import GQLFilter
from repro.matching.filters.ldf import LDFFilter
from repro.matching.filters.nlf import NLFFilter

FILTERS = {
    cls.name: cls for cls in (LDFFilter, NLFFilter, GQLFilter, CFLFilter, DPisoFilter)
}

__all__ = [
    "CFLFilter",
    "DPisoFilter",
    "FILTERS",
    "GQLFilter",
    "LDFFilter",
    "NLFFilter",
]
