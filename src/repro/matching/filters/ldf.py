"""Label-and-degree filter (LDF) — the universal base rule.

``C(u) = { v in V(G) : L(v) = L(u) and d(v) >= d(u) }``.

Every embedding maps ``u`` to a same-label vertex of at-least-equal degree,
so LDF is complete; all stronger filters start from it.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets

__all__ = ["LDFFilter"]


class LDFFilter(CandidateFilter):
    """Label-degree filter."""

    name = "ldf"

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        sets = []
        for u in query.vertices():
            lab, deg = query.label(u), query.degree(u)
            sets.append(
                [int(v) for v in data.vertices_with_label(lab) if data.degree(int(v)) >= deg]
            )
        return CandidateSets(sets)
