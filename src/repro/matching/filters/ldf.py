"""Label-and-degree filter (LDF) — the universal base rule.

``C(u) = { v in V(G) : L(v) = L(u) and d(v) >= d(u) }``.

Every embedding maps ``u`` to a same-label vertex of at-least-equal degree,
so LDF is complete; all stronger filters start from it.

The rule is evaluated as one vectorized mask per query vertex over the
data graph's label index and degree array — no per-vertex Python loop —
and the surviving slice feeds :meth:`CandidateSets.from_arrays` directly
(the label index is sorted, and masking preserves order).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets

__all__ = ["LDFFilter", "ldf_candidates"]


def ldf_candidates(query: Graph, data: Graph, u: int) -> np.ndarray:
    """Sorted LDF survivors for one query vertex (shared base rule)."""
    same_label = data.vertices_with_label(query.label(u))
    if same_label.size == 0:
        return same_label
    keep = np.flatnonzero(data.degrees[same_label] >= query.degree(u))
    return same_label[keep]


class LDFFilter(CandidateFilter):
    """Label-degree filter."""

    name = "ldf"

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        return CandidateSets.from_arrays(
            [ldf_candidates(query, data, u) for u in query.vertices()]
        )
