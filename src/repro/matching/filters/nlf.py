"""Neighborhood label frequency filter (NLF).

On top of LDF, ``v`` stays in ``C(u)`` only if for every label ``l`` the
number of ``l``-labeled neighbours of ``v`` is at least the number of
``l``-labeled neighbours of ``u``.  Any embedding maps ``N(u)`` injectively
into ``N(v)`` preserving labels, so the rule is complete.
"""

from __future__ import annotations

from collections import Counter

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets

__all__ = ["NLFFilter"]


class NLFFilter(CandidateFilter):
    """Neighborhood-label-frequency filter."""

    name = "nlf"

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        query_nlf = [Counter(query.neighbor_labels(u)) for u in query.vertices()]
        data_nlf_cache: dict[int, Counter[int]] = {}

        def data_nlf(v: int) -> Counter[int]:
            cached = data_nlf_cache.get(v)
            if cached is None:
                cached = Counter(data.neighbor_labels(v))
                data_nlf_cache[v] = cached
            return cached

        sets = []
        for u in query.vertices():
            lab, deg = query.label(u), query.degree(u)
            need = query_nlf[u]
            survivors = []
            for v in data.vertices_with_label(lab):
                v = int(v)
                if data.degree(v) < deg:
                    continue
                have = data_nlf(v)
                if all(have.get(l, 0) >= c for l, c in need.items()):
                    survivors.append(v)
            sets.append(survivors)
        return CandidateSets(sets)
