"""Neighborhood label frequency filter (NLF).

On top of LDF, ``v`` stays in ``C(u)`` only if for every label ``l`` the
number of ``l``-labeled neighbours of ``v`` is at least the number of
``l``-labeled neighbours of ``u``.  Any embedding maps ``N(u)`` injectively
into ``N(v)`` preserving labels, so the rule is complete.

The per-label neighbour counts come from
:meth:`GraphStats.neighbor_label_counts` — one ``np.bincount`` over the
data graph's CSR arrays per *required* label, cached on the stats object
so a whole query workload against one data graph pays each label's scan
once.  The per-query-vertex rule is then a chain of vectorized masks over
the LDF survivors — no per-candidate Counter comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.filters.ldf import ldf_candidates

__all__ = ["NLFFilter"]


class NLFFilter(CandidateFilter):
    """Neighborhood-label-frequency filter."""

    name = "nlf"

    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        stats = self._require_stats(data, stats)

        arrays: list[np.ndarray] = []
        for u in query.vertices():
            survivors = ldf_candidates(query, data, u)
            # Label requirements of N(u), vectorized over the neighbours.
            need_labels, need_counts = np.unique(
                query.labels[query.neighbors(u)], return_counts=True
            )
            for lab, cnt in zip(need_labels.tolist(), need_counts.tolist()):
                if survivors.size == 0:
                    break
                counts = stats.neighbor_label_counts(lab)
                keep = np.flatnonzero(counts[survivors] >= cnt)
                survivors = survivors[keep]
            arrays.append(survivors)
        return CandidateSets.from_arrays(arrays)
