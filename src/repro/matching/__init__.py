"""Subgraph matching substrate: filters, orderings, enumeration, engine.

Data flows through one CSR-flat storage chain: :class:`repro.graphs.Graph`
holds adjacency as contiguous ``(indptr, indices)`` int64 buffers, the
filters carve sorted candidate arrays out of them (:class:`CandidateSets`),
and :class:`CandidateSpace` lays the per-query-edge candidate adjacency out
as flat ``(offsets, concat_indices)`` buffers plus dense position maps.

:class:`MatchingContext` bundles those Phase (1) artifacts — query, data,
candidates, candidate space — into the object that travels through the
pipeline: :meth:`MatchingEngine.run` builds it once per query (the space
build is billed to ``filter_time``), hands it to the orderer via
:meth:`Orderer.order_context` and to the enumerator via
:meth:`Enumerator.run_context`.  Callers that enumerate one instance many
times (reward rollouts, optimal-order sweeps, profiling) construct a
context themselves and reuse it; the positional ``Enumerator.run``
signature remains as a one-shot convenience.
"""

from repro.matching.bipartite import has_semi_perfect_matching, hopcroft_karp
from repro.matching.candidate_space import CandidateSpace
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.context import MatchingContext
from repro.matching.engine import MatchingEngine, MatchResult
from repro.matching.enumeration import (
    DEFAULT_TIME_LIMIT,
    ENUMERATION_STRATEGIES,
    EnumerationResult,
    Enumerator,
    IterativeEnumerator,
    MatchStream,
)
from repro.matching.enumeration_iter import intersect_sorted
from repro.matching.kernels import (
    ScratchBuffers,
    intersect_into,
    intersect_unused_into,
)
from repro.matching.filters import (
    FILTERS,
    CFLFilter,
    DPisoFilter,
    GQLFilter,
    LDFFilter,
    NLFFilter,
)
from repro.matching.cost import estimate_order_cost, rank_orders
from repro.matching.sharded import (
    ShardedMatchStream,
    ShardOutcome,
    ShardRun,
    build_shard_runs,
    merge_shard_matches,
)
from repro.matching.verify import explain_embedding, is_valid_embedding, verify_all
from repro.matching.ordering import (
    ORDERERS,
    CFLOrderer,
    GQLOrderer,
    OptimalOrderer,
    Orderer,
    QSIOrderer,
    RandomOrderer,
    RIOrderer,
    VEQOrderer,
    VF2PPOrderer,
)

__all__ = [
    "CFLFilter",
    "CFLOrderer",
    "CandidateFilter",
    "CandidateSets",
    "CandidateSpace",
    "DEFAULT_TIME_LIMIT",
    "DPisoFilter",
    "ENUMERATION_STRATEGIES",
    "EnumerationResult",
    "Enumerator",
    "FILTERS",
    "IterativeEnumerator",
    "GQLFilter",
    "GQLOrderer",
    "LDFFilter",
    "MatchResult",
    "MatchStream",
    "MatchingContext",
    "MatchingEngine",
    "NLFFilter",
    "ORDERERS",
    "OptimalOrderer",
    "Orderer",
    "QSIOrderer",
    "RIOrderer",
    "RandomOrderer",
    "ShardOutcome",
    "ShardRun",
    "ShardedMatchStream",
    "build_shard_runs",
    "merge_shard_matches",
    "VEQOrderer",
    "VF2PPOrderer",
    "estimate_order_cost",
    "explain_embedding",
    "has_semi_perfect_matching",
    "hopcroft_karp",
    "intersect_sorted",
    "ScratchBuffers",
    "intersect_into",
    "intersect_unused_into",
    "is_valid_embedding",
    "rank_orders",
    "verify_all",
]
