"""Subgraph matching substrate: filters, orderings, enumeration, engine."""

from repro.matching.bipartite import has_semi_perfect_matching, hopcroft_karp
from repro.matching.candidate_space import CandidateSpace
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.engine import MatchingEngine, MatchResult
from repro.matching.enumeration import (
    DEFAULT_TIME_LIMIT,
    ENUMERATION_STRATEGIES,
    EnumerationResult,
    Enumerator,
    IterativeEnumerator,
)
from repro.matching.enumeration_iter import intersect_sorted
from repro.matching.filters import (
    FILTERS,
    CFLFilter,
    DPisoFilter,
    GQLFilter,
    LDFFilter,
    NLFFilter,
)
from repro.matching.cost import estimate_order_cost, rank_orders
from repro.matching.verify import explain_embedding, is_valid_embedding, verify_all
from repro.matching.ordering import (
    ORDERERS,
    CFLOrderer,
    GQLOrderer,
    OptimalOrderer,
    Orderer,
    QSIOrderer,
    RandomOrderer,
    RIOrderer,
    VEQOrderer,
    VF2PPOrderer,
)

__all__ = [
    "CFLFilter",
    "CFLOrderer",
    "CandidateFilter",
    "CandidateSets",
    "CandidateSpace",
    "DEFAULT_TIME_LIMIT",
    "DPisoFilter",
    "ENUMERATION_STRATEGIES",
    "EnumerationResult",
    "Enumerator",
    "FILTERS",
    "IterativeEnumerator",
    "GQLFilter",
    "GQLOrderer",
    "LDFFilter",
    "MatchResult",
    "MatchingEngine",
    "NLFFilter",
    "ORDERERS",
    "OptimalOrderer",
    "Orderer",
    "QSIOrderer",
    "RIOrderer",
    "RandomOrderer",
    "VEQOrderer",
    "VF2PPOrderer",
    "estimate_order_cost",
    "explain_embedding",
    "has_semi_perfect_matching",
    "hopcroft_karp",
    "intersect_sorted",
    "is_valid_embedding",
    "rank_orders",
    "verify_all",
]
