"""Candidate-space auxiliary structure (CECI / DP-iso style).

CECI [19] and DP-iso [12] do not enumerate over raw candidate sets: they
precompute, for every query edge ``(u, u')`` and every candidate
``v ∈ C(u)``, the adjacency list ``N(v) ∩ C(u')``.  The enumeration's
local-candidate computation then becomes a lookup plus (small) set
intersections instead of scans over full data-graph neighbourhoods.

:class:`CandidateSpace` is that index.  Building it costs
``O(Σ_(u,u') Σ_{v∈C(u)} d(v))`` once per query; the paper's framework
treats it as part of Phase (1).  :meth:`CandidateSpace.local_candidates`
is the drop-in replacement for Line 6 of Algorithm 2, and
``Enumerator(use_candidate_space=True)`` (see
:mod:`repro.matching.enumeration`) uses it transparently — the match set
and ``#enum`` are unchanged, only the per-call constant drops.

Per-edge adjacency lists are built as sorted int64 arrays
(:meth:`CandidateSpace.edge_arrays`), which the iterative engine
(:mod:`repro.matching.enumeration_iter`) folds with vectorised
sorted-array intersections.  The frozenset view used by the recursive
engine's membership tests is derived lazily, one edge direction at a
time, on first access — a build that only ever feeds the iterative
engine never pays for it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.matching.candidates import CandidateSets

__all__ = ["CandidateSpace"]

_EMPTY: frozenset[int] = frozenset()
_EMPTY_ARRAY = np.empty(0, dtype=np.int64)
_EMPTY_ARRAY.setflags(write=False)


class CandidateSpace:
    """Per-query-edge candidate adjacency index.

    Parameters
    ----------
    query / data:
        The matching instance.
    candidates:
        Complete candidate sets from any filter.
    """

    def __init__(self, query: Graph, data: Graph, candidates: CandidateSets):
        if candidates.num_query_vertices != query.num_vertices:
            raise FilterError("candidate sets do not cover the query")
        self.query = query
        self.data = data
        self.candidates = candidates
        # _edge_arrays[(u, u_prime)][v] = sorted array of N(v) ∩ C(u_prime)
        # for v in C(u); _edges holds the frozenset view of the same lists,
        # derived lazily per direction on first set-based access.
        self._edges: dict[tuple[int, int], dict[int, frozenset[int]]] = {}
        self._edge_arrays: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        for u, u_prime in query.edges():
            self._edge_arrays[(u, u_prime)] = self._build_direction(u, u_prime)
            self._edge_arrays[(u_prime, u)] = self._build_direction(u_prime, u)

    def _build_direction(self, u: int, u_prime: int) -> dict[int, np.ndarray]:
        target = self.candidates.get(u_prime)
        arrays: dict[int, np.ndarray] = {}
        for v in self.candidates.get(u):
            # data.neighbors(v) is sorted, so the filtered list stays sorted.
            adjacent = [int(w) for w in self.data.neighbors(v) if int(w) in target]
            arr = np.asarray(adjacent, dtype=np.int64)
            arr.setflags(write=False)
            arrays[v] = arr
        return arrays

    def _sets_for(
        self, key: tuple[int, int]
    ) -> dict[int, frozenset[int]] | None:
        """Frozenset view of one edge direction (built on first use)."""
        sets = self._edges.get(key)
        if sets is None:
            arrays = self._edge_arrays.get(key)
            if arrays is None:
                return None
            sets = {v: frozenset(arr.tolist()) for v, arr in arrays.items()}
            self._edges[key] = sets
        return sets

    def edge_candidates(self, u: int, u_prime: int, v: int) -> frozenset[int]:
        """``N(v) ∩ C(u')`` for ``v ∈ C(u)`` along query edge ``(u, u')``."""
        direction = self._sets_for((u, u_prime))
        if direction is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        return direction.get(v, _EMPTY)

    def edge_candidates_array(self, u: int, u_prime: int, v: int) -> np.ndarray:
        """:meth:`edge_candidates` as a sorted int64 array."""
        direction = self._edge_arrays.get((u, u_prime))
        if direction is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        return direction.get(v, _EMPTY_ARRAY)

    def edge_arrays(self, u: int, u_prime: int) -> dict[int, np.ndarray]:
        """The whole ``v -> N(v) ∩ C(u')`` array map for query edge ``(u, u')``.

        The iterative enumeration engine pre-binds these dicts per depth
        so its hot loop is a plain lookup plus array intersections.
        """
        direction = self._edge_arrays.get((u, u_prime))
        if direction is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        return direction

    def local_candidates(
        self, u: int, mapped: list[tuple[int, int]]
    ) -> frozenset[int]:
        """Candidates of ``u`` adjacent to every mapped backward neighbour.

        ``mapped`` lists ``(backward query vertex, its image)`` pairs.
        With no backward neighbours this is the full candidate set.
        """
        if not mapped:
            return self.candidates.get(u)
        # Intersect the per-edge adjacency sets, smallest first.
        sets = [
            self.edge_candidates(u_prime, u, image) for u_prime, image in mapped
        ]
        sets.sort(key=len)
        result = sets[0]
        for s in sets[1:]:
            if not result:
                break
            result = result & s
        return result

    def memory_bytes(self) -> int:
        """Approximate index footprint (for space-overhead reporting)."""
        total = 0
        for direction in self._edge_arrays.values():
            for arr in direction.values():
                total += 8 * (arr.size + 1)
        # Lazily materialized frozenset views count once they exist.
        for direction in self._edges.values():
            for adjacent in direction.values():
                total += 8 * (len(adjacent) + 1)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        pairs = sum(len(d) for d in self._edge_arrays.values())
        return f"CandidateSpace(edges={len(self._edge_arrays) // 2}, entries={pairs})"
