"""Candidate-space auxiliary structure (CECI / DP-iso style), CSR-flat.

CECI [19] and DP-iso [12] do not enumerate over raw candidate sets: they
precompute, for every query edge ``(u, u')`` and every candidate
``v ∈ C(u)``, the adjacency list ``N(v) ∩ C(u')``.  The enumeration's
local-candidate computation then becomes a lookup plus (small) set
intersections instead of scans over full data-graph neighbourhoods.

:class:`CandidateSpace` is that index, laid out as one flat buffer per
edge direction instead of a dict of per-vertex arrays: direction
``(u, u')`` stores ``(offsets, concat_indices)`` where the adjacency list
of the ``p``-th candidate of ``u`` is
``concat_indices[offsets[p]:offsets[p+1]]``, plus a shared dense
``vertex -> position in C(u)`` map per query vertex.  A per-edge lookup
is therefore two array indexings — no dict probes, no millions of tiny
ndarray objects on real data graphs.

Building the index is fully vectorized over the data graph's CSR arrays:
the neighbourhoods of all candidates are gathered in one shot and
filtered against ``C(u')`` with a single ``searchsorted`` membership
test.  The frozenset views used by the recursive engine's membership
tests are derived lazily, one edge direction at a time, on first access —
a build that only ever feeds the iterative engine never pays for them.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.matching.candidates import CandidateSets

__all__ = ["CandidateSpace"]

_EMPTY: frozenset[int] = frozenset()
_EMPTY_ARRAY = np.empty(0, dtype=np.int64)
_EMPTY_ARRAY.setflags(write=False)


class CandidateSpace:
    """Per-query-edge candidate adjacency index over flat buffers.

    Parameters
    ----------
    query / data:
        The matching instance.
    candidates:
        Complete candidate sets from any filter.
    """

    __slots__ = ("query", "data", "candidates", "_positions", "_flat", "_set_views")

    def __init__(self, query: Graph, data: Graph, candidates: CandidateSets):
        if candidates.num_query_vertices != query.num_vertices:
            raise FilterError("candidate sets do not cover the query")
        self.query = query
        self.data = data
        self.candidates = candidates
        #: query vertex u -> dense int64 map: data vertex -> position in
        #: C(u) (-1 when absent); shared across all directions leaving u.
        self._positions: dict[int, np.ndarray] = {}
        #: (u, u') -> (offsets, concat_indices) flat adjacency buffers.
        self._flat: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        #: Lazily derived frozenset views, one direction at a time.
        self._set_views: dict[tuple[int, int], dict[int, frozenset[int]]] = {}
        indptr, indices = data.csr
        for u, u_prime in query.edges():
            self._flat[(u, u_prime)] = self._build_direction(
                u, u_prime, indptr, indices
            )
            self._flat[(u_prime, u)] = self._build_direction(
                u_prime, u, indptr, indices
            )
        # Dense position maps are part of the index: build them with it,
        # so the whole CandidateSpace cost lands in Phase (1) and the
        # first timed enumeration pays nothing extra.
        for u in query.vertices():
            if query.degree(u):
                self._position_map(u)

    def _build_direction(
        self, u: int, u_prime: int, indptr: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``N(v) ∩ C(u')`` lists for all ``v ∈ C(u)``, vectorized."""
        source = self.candidates.array(u)
        target = self.candidates.array(u_prime)
        degs = indptr[source + 1] - indptr[source] if source.size else _EMPTY_ARRAY
        total = int(degs.sum()) if source.size else 0
        if total == 0 or target.size == 0:
            offsets = np.zeros(source.size + 1, dtype=np.int64)
            concat = _EMPTY_ARRAY
        else:
            # Gather the concatenated neighbourhoods of every candidate:
            # for segment p the positions indptr[v_p] .. indptr[v_p]+d(v_p).
            seg_starts = np.cumsum(degs) - degs
            flat_pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(seg_starts, degs)
                + np.repeat(indptr[source], degs)
            )
            nbrs = indices[flat_pos]
            # Membership of each neighbour in the sorted C(u') array.
            loc = np.searchsorted(target, nbrs)
            mask = target[np.minimum(loc, target.size - 1)] == nbrs
            seg_ids = np.repeat(np.arange(source.size, dtype=np.int64), degs)
            counts = np.bincount(seg_ids[mask], minlength=source.size)
            offsets = np.zeros(source.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            concat = nbrs[mask]
            concat.setflags(write=False)
        offsets.setflags(write=False)
        return offsets, concat

    def _position_map(self, u: int) -> np.ndarray:
        """Dense ``data vertex -> position in C(u)`` map (built on demand).

        int32 is enough (positions are bounded by ``|C(u)| < |V(G)|``)
        and halves the O(|V(G)|)-per-query-vertex footprint.
        """
        positions = self._positions.get(u)
        if positions is None:
            source = self.candidates.array(u)
            positions = np.full(self.data.num_vertices, -1, dtype=np.int32)
            positions[source] = np.arange(source.size, dtype=np.int32)
            positions.setflags(write=False)
            self._positions[u] = positions
        return positions

    def edge_flat(
        self, u: int, u_prime: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat ``(positions, offsets, concat_indices)`` triple.

        The iterative enumeration engine pre-binds these arrays per depth
        so its hot loop is two array indexings plus array intersections.
        """
        flat = self._flat.get((u, u_prime))
        if flat is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        return (self._position_map(u),) + flat

    def edge_candidates_array(self, u: int, u_prime: int, v: int) -> np.ndarray:
        """``N(v) ∩ C(u')`` for ``v ∈ C(u)`` as a sorted int64 array."""
        flat = self._flat.get((u, u_prime))
        if flat is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        positions = self._position_map(u)
        if not 0 <= v < positions.size:
            return _EMPTY_ARRAY
        p = positions[v]
        if p < 0:
            return _EMPTY_ARRAY
        offsets, concat = flat
        return concat[offsets[p] : offsets[p + 1]]

    def edge_candidates(self, u: int, u_prime: int, v: int) -> frozenset[int]:
        """:meth:`edge_candidates_array` as a frozenset (lazy view)."""
        direction = self._sets_for((u, u_prime))
        if direction is None:
            raise FilterError(f"({u}, {u_prime}) is not a query edge")
        return direction.get(v, _EMPTY)

    def _sets_for(
        self, key: tuple[int, int]
    ) -> dict[int, frozenset[int]] | None:
        """Frozenset view of one edge direction (built on first use)."""
        sets = self._set_views.get(key)
        if sets is None:
            flat = self._flat.get(key)
            if flat is None:
                return None
            offsets, concat = flat
            source = self.candidates.array(key[0]).tolist()
            bounds = offsets.tolist()
            values = concat.tolist()
            sets = {
                v: frozenset(values[bounds[p] : bounds[p + 1]])
                for p, v in enumerate(source)
            }
            self._set_views[key] = sets
        return sets

    def local_candidates(
        self, u: int, mapped: list[tuple[int, int]]
    ) -> frozenset[int]:
        """Candidates of ``u`` adjacent to every mapped backward neighbour.

        ``mapped`` lists ``(backward query vertex, its image)`` pairs.
        With no backward neighbours this is the full candidate set.
        """
        if not mapped:
            return self.candidates.get(u)
        # Intersect the per-edge adjacency sets, smallest first.
        sets = [
            self.edge_candidates(u_prime, u, image) for u_prime, image in mapped
        ]
        sets.sort(key=len)
        result = sets[0]
        for s in sets[1:]:
            if not result:
                break
            result = result & s
        return result

    def memory_bytes(self) -> int:
        """Index footprint: flat buffers, position maps, and lazy views.

        Each canonical buffer is counted exactly once; frozenset views
        are counted via their actual object sizes when (and only when)
        they have been materialized — no double-charging the same
        adjacency entries at 8 bytes twice.
        """
        total = sum(
            offsets.nbytes + concat.nbytes for offsets, concat in self._flat.values()
        )
        total += sum(positions.nbytes for positions in self._positions.values())
        for direction in self._set_views.values():
            total += sys.getsizeof(direction)
            total += sum(sys.getsizeof(adjacent) for adjacent in direction.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        pairs = sum(offsets.size - 1 for offsets, _ in self._flat.values())
        return f"CandidateSpace(edges={len(self._flat) // 2}, entries={pairs})"
