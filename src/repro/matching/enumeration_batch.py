"""Frontier-batched vectorized enumeration (the ``"vectorized"`` backend).

The iterative engine spends one Python interpreter iteration per
``#enum`` step.  Profiling the bench workloads shows where those steps
live: ~78% of all extension attempts happen at the deepest depth, ~98%
at the deepest two, ~99.7% at the deepest three, and the average
subtree hanging off one depth-``n-3`` node is ~400 steps wide.  This
module exploits exactly that shape: a plain explicit-stack DFS (shared
helpers with :mod:`repro.matching.enumeration_iter`) walks depths
``0 .. n-4``, and everything below a depth-``n-3`` node — the *parent*
level ``A = n-3``, the *row* level ``B = n-2``, and the *leaf* level
``C = n-1`` — is expanded as one batched frontier:

* every valid parent's row segment is materialized in one
  :func:`~repro.matching.kernels.gather_segments_into` call over the
  flat ``(positions, offsets, concat)`` edge binding,
* backward-edge constraints become bulk ``searchsorted`` membership
  masks (:func:`~repro.matching.kernels.batch_membership_into`),
* injectivity is one vectorized probe of the dense ``used`` map plus
  ``!=`` masks against the two in-batch ancestor columns
  (:func:`~repro.matching.kernels.batch_unused_into`), and
* leaf candidates for *all* rows are produced in chunked flat batches
  drawn from the growable :class:`ScratchBuffers` batch buffers, so
  peak memory is bounded by the chunk width, not the subtree size.

**Bit-identity.**  Matches are emitted parent-major, then row-major,
then in ascending leaf order — exactly the DFS lexicographic order —
and ``#enum`` is reconstructed in closed form: every valid parent
charges one step, every valid row charges one step, every surviving
leaf charges one step, all interleaved in DFS order.  A survivor whose
parent has (frontier-local) index ``i``, whose row has flat index ``r``
and which is the ``s``-th survivor of the frontier therefore carries
``enum_start + (i+1) + (r+1) + (s+1)``; vertices skipped by any filter
(membership, ``used``, in-batch ancestors) never charge, matching both
per-node engines, where a used vertex is skipped *before* it counts.
This makes match sequences and ``#enum`` — including under
``match_limit`` truncation, which cuts mid-chunk using the per-survivor
enum vector — bit-identical to ``"iterative"`` and ``"recursive"``.

Timeout checks keep the per-node engines' cadence contract (a check
whenever ``#enum`` crosses a multiple of ``check_every``) but fire at
chunk granularity; timeout *outcomes* are wall-clock-dependent in every
engine, so only the flag, not the truncation point, is comparable.

:func:`enumerate_vectorized` mirrors :func:`enumerate_iterative`'s
signature and return; :func:`enumerate_lazy_vectorized` is the
generator twin that lets ``MatchStream`` ride the batched core while
publishing exact per-match counters.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro.matching.context import MatchingContext
from repro.matching.enumeration_iter import (
    _EMPTY,
    EnumerationCounters,
    _bind_depths,
    _local_candidates,
    intersect_sorted,
)
from repro.matching.kernels import (
    ScratchBuffers,
    batch_membership_into,
    batch_unused_into,
    gather_segments_into,
)

__all__ = [
    "FRONTIER_CHUNK",
    "enumerate_lazy_vectorized",
    "enumerate_vectorized",
]

#: Target number of flat leaf-batch entries processed per chunk.  Small
#: enough that the working set stays cache-friendly and truncation
#: checks stay frequent; large enough to amortize numpy call overhead.
#: A single over-long segment still processes whole (buffers grow), so
#: this is a target, not a hard cap.
FRONTIER_CHUNK = 1 << 16


def _segment(
    binding: tuple[np.ndarray, np.ndarray, np.ndarray], image: int
) -> np.ndarray:
    """One backward neighbour's adjacency list for a concrete image."""
    positions, offsets, concat = binding
    p = positions[image]
    return concat[offsets[p] : offsets[p + 1]]


def _fixed_list(
    segs: list[np.ndarray], base: np.ndarray, used: np.ndarray, filter_used: bool
) -> np.ndarray:
    """Candidate list shared by every row of a frontier level whose
    backward neighbours are all in the (fixed) prefix: the intersection
    of their segments (or the base candidate array when there are
    none), with prefix injectivity applied once up front — used
    vertices never charge, so dropping them early cannot change
    ``#enum``."""
    if not segs:
        arr = base
    else:
        arr = segs[0]
        for other in segs[1:]:
            arr = intersect_sorted(arr, other)
    if filter_used and arr.size:
        arr = arr[~used[arr]]
    return arr


class _FrontierBinding:
    """Static shape of the three deepest levels for one (order, backward).

    Splits each level's backward neighbours into the *varying* ones
    (bound to in-batch levels ``A``/``B``) and the *fixed* ones (bound
    to the DFS prefix), and picks the leaf generation strategy:

    - ``c_kind == "B"`` — the leaf has a query edge to the row level;
      leaf candidates are gathered from the per-row segments, with an
      optional per-parent membership sweep when the leaf also binds to
      the parent level (``c_parent``).
    - ``c_kind == "A"`` — the leaf binds to the parent level only; leaf
      candidates are gathered from the per-parent segments, repeated
      per row.
    - ``c_kind == "fixed"`` — the leaf binds only to the prefix (or to
      nothing); one shared list is tiled across rows.
    """

    __slots__ = ("pa", "rb", "lc", "has_parent", "b_var", "b_fixed",
                 "c_kind", "c_gen", "c_parent", "c_fixed")

    def __init__(
        self,
        order: Sequence[int],
        backward: Sequence[Sequence[int]],
        bindings: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    ):
        n = len(order)
        self.pa = pa = n - 3
        self.rb = rb = n - 2
        self.lc = lc = n - 1
        self.has_parent = pa >= 0
        self.b_var = None
        self.b_fixed: list[tuple[tuple, int]] = []
        for j, pos in enumerate(backward[rb]):
            if pos == pa:
                self.b_var = bindings[rb][j]
            else:
                self.b_fixed.append((bindings[rb][j], pos))
        gen_b = gen_a = None
        self.c_fixed: list[tuple[tuple, int]] = []
        for j, pos in enumerate(backward[lc]):
            if pos == rb:
                gen_b = bindings[lc][j]
            elif pos == pa:
                gen_a = bindings[lc][j]
            else:
                self.c_fixed.append((bindings[lc][j], pos))
        if gen_b is not None:
            self.c_kind = "B"
            self.c_gen = gen_b
            self.c_parent = gen_a
        elif gen_a is not None:
            self.c_kind = "A"
            self.c_gen = gen_a
            self.c_parent = None
        else:
            self.c_kind = "fixed"
            self.c_gen = None
            self.c_parent = None


def _enumerate_chunks(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    deadline: float | None,
    check_every: int,
    flags: EnumerationCounters,
    need_matrix: bool,
    scratch: ScratchBuffers | None,
) -> Iterator[tuple[np.ndarray | None, np.ndarray]]:
    """Core driver: yields ``(matrix, senum)`` per non-empty leaf chunk.

    ``matrix`` is an ``(s, n)`` int64 array of embeddings indexed by
    query vertex (``None`` when ``need_matrix`` is false); ``senum`` is
    the exact DFS ``#enum`` value at each of the ``s`` matches, in
    order.  Both are freshly allocated per chunk, so consumers may hold
    them across pulls.  On every way out of the frame, ``flags``
    carries the final ``#enum`` and the timeout flag.
    """
    n = len(order)
    perf_counter = time.perf_counter
    enum = 1
    try:
        # Root "call", with the per-node engines' exact check cadence.
        if (
            deadline is not None
            and enum % check_every == 0
            and perf_counter() > deadline
        ):
            flags.timed_out = True
            return
        used = np.zeros(context.data.num_vertices, dtype=bool)
        base_arrays, bindings, scratch = _bind_depths(
            context, order, backward, scratch
        )

        if n == 1:
            # Every root candidate is a match; used is empty and there
            # are no backward edges, so the whole query is one bulk op.
            base = base_arrays[0]
            for lo in range(0, base.size, FRONTIER_CHUNK):
                vals = base[lo : lo + FRONTIER_CHUNK]
                senum = enum + 1 + np.arange(vals.size, dtype=np.int64)
                matrix = None
                if need_matrix:
                    matrix = vals.astype(np.int64).reshape(-1, 1)
                enum += vals.size
                yield matrix, senum
            return

        fb = _FrontierBinding(order, backward, bindings)
        pa, rb, lc = fb.pa, fb.rb, fb.lc
        has_parent = fb.has_parent
        has_prefix = n >= 4  # any depths (hence `used` marks) above the frontier
        images = [0] * n

        def frontier(W: np.ndarray | None) -> Iterator:
            """Bulk-expand levels (A, B, C) under the current prefix."""
            nonlocal enum
            enum_start = enum
            next_check = (enum // check_every + 1) * check_every
            parents_done = 0
            rows_done = 0
            survs_done = 0

            b_fixed_segs = [
                _segment(binding, images[pos]) for binding, pos in fb.b_fixed
            ]
            c_fixed_segs = [
                _segment(binding, images[pos]) for binding, pos in fb.c_fixed
            ]
            fc_list = None
            if fb.c_kind == "fixed":
                fc_list = _fixed_list(
                    c_fixed_segs, base_arrays[lc], used, has_prefix
                )

            # ---- parent groups -------------------------------------------------
            if W is not None:
                W_valid = W[~used[W]] if has_prefix else W
                nW = W_valid.size
                if nW == 0:
                    return
                if fb.b_var is not None:
                    positions, offsets, concat_b = fb.b_var
                    p = positions[W_valid]
                    b_starts = offsets[p]
                    b_lens = offsets[p + 1] - b_starts
                    b_cum = np.cumsum(b_lens)
                else:
                    fb_list = _fixed_list(
                        b_fixed_segs, base_arrays[rb], used, has_prefix
                    )
                    per_group = max(1, FRONTIER_CHUNK // max(fb_list.size, 1))
                groups = []
                g0 = 0
                while g0 < nW:
                    if fb.b_var is not None:
                        base_off = int(b_cum[g0 - 1]) if g0 else 0
                        g1 = int(
                            np.searchsorted(
                                b_cum, base_off + FRONTIER_CHUNK, side="right"
                            )
                        )
                        g1 = min(max(g1, g0 + 1), nW)
                    else:
                        g1 = min(g0 + per_group, nW)
                    groups.append((g0, g1))
                    g0 = g1
            else:
                # n == 2: the row level is the root — no backward edges,
                # no prefix, every base candidate is a valid row.
                groups = [(0, 0)]

            for g0, g1 in groups:
                # ---- row stage: flat (value, parent) row list ----------------
                if W is None:
                    v_flat = base_arrays[rb]
                    parent_flat = None
                    k = v_flat.size
                    wimg = None
                elif fb.b_var is not None:
                    W_grp = W_valid[g0:g1]
                    lens_g = b_lens[g0:g1]
                    total = int(lens_g.sum())
                    k = 0
                    v_flat = parent_flat = wimg = None
                    if total:
                        buf = scratch.batch("b_vals", total)
                        gather_segments_into(
                            concat_b, b_starts[g0:g1], lens_g, buf
                        )
                        vals = buf[:total]
                        parent_local = np.repeat(
                            np.arange(g1 - g0, dtype=np.int64), lens_g
                        )
                        m = scratch.batch("b_mask", total, np.bool_)[:total]
                        first = True
                        for seg in b_fixed_segs:
                            batch_membership_into(
                                vals, seg, m, accumulate=not first
                            )
                            first = False
                        if first:
                            m[:] = True
                        if has_prefix:
                            tmp = scratch.batch("b_tmp", total, np.bool_)
                            batch_unused_into(vals, used, m, tmp)
                        t = scratch.batch("b_tmp", total, np.bool_)[:total]
                        np.not_equal(vals, W_grp[parent_local], out=t)
                        np.logical_and(m, t, out=m)
                        k = int(np.count_nonzero(m))
                        if k:
                            vbuf = scratch.batch("b_keep_v", k)
                            pbuf = scratch.batch("b_keep_p", k)
                            vals.compress(m, out=vbuf[:k])
                            parent_local.compress(m, out=pbuf[:k])
                            v_flat = vbuf[:k]
                            parent_flat = pbuf[:k]
                            wimg = W_grp[parent_flat]
                else:
                    W_grp = W_valid[g0:g1]
                    nWg = g1 - g0
                    F = fb_list.size
                    total = nWg * F
                    k = 0
                    v_flat = parent_flat = wimg = None
                    if total:
                        buf = scratch.batch("b_vals", total)
                        v2 = buf[:total].reshape(nWg, F)
                        v2[:] = fb_list
                        vals = buf[:total]
                        parent_local = np.repeat(
                            np.arange(nWg, dtype=np.int64), F
                        )
                        m = scratch.batch("b_mask", total, np.bool_)[:total]
                        np.not_equal(v2, W_grp[:, None], out=m.reshape(nWg, F))
                        k = int(np.count_nonzero(m))
                        if k:
                            vbuf = scratch.batch("b_keep_v", k)
                            pbuf = scratch.batch("b_keep_p", k)
                            vals.compress(m, out=vbuf[:k])
                            parent_local.compress(m, out=pbuf[:k])
                            v_flat = vbuf[:k]
                            parent_flat = pbuf[:k]
                            wimg = W_grp[parent_flat]

                if k:
                    # Absolute DFS charge carried by each row: parents
                    # visited up to and including its own (+1 each) plus
                    # rows visited up to and including itself.
                    if parent_flat is not None:
                        row_charge = (
                            parent_flat
                            + np.arange(k, dtype=np.int64)
                            + (parents_done + rows_done + 2)
                        )
                    else:
                        row_charge = np.arange(k, dtype=np.int64) + (
                            rows_done + 1
                        )

                    # ---- leaf stage, chunked ---------------------------------
                    if fb.c_kind == "B":
                        positions, offsets, concat_c = fb.c_gen
                        pc = positions[v_flat]
                        c_starts = offsets[pc]
                        c_lens = offsets[pc + 1] - c_starts
                    elif fb.c_kind == "A":
                        positions, offsets, concat_c = fb.c_gen
                        pc = positions[wimg]
                        c_starts = offsets[pc]
                        c_lens = offsets[pc + 1] - c_starts
                    else:
                        concat_c = None
                        F_c = fc_list.size
                        c_lens = None

                    if fb.c_kind == "fixed":
                        row_step = max(1, FRONTIER_CHUNK // max(F_c, 1))
                        bounds = list(range(0, k, row_step)) + [k]
                    else:
                        c_cum = np.cumsum(c_lens)
                        bounds = [0]
                        while bounds[-1] < k:
                            r0 = bounds[-1]
                            base_off = int(c_cum[r0 - 1]) if r0 else 0
                            r1 = int(
                                np.searchsorted(
                                    c_cum,
                                    base_off + FRONTIER_CHUNK,
                                    side="right",
                                )
                            )
                            bounds.append(min(max(r1, r0 + 1), k))

                    for bi in range(len(bounds) - 1):
                        r0, r1 = bounds[bi], bounds[bi + 1]
                        if r1 <= r0:
                            continue
                        if fb.c_kind == "fixed":
                            nr = r1 - r0
                            ctotal = nr * F_c
                            if ctotal:
                                cbuf = scratch.batch("c_vals", ctotal)
                                c2 = cbuf[:ctotal].reshape(nr, F_c)
                                c2[:] = fc_list
                                cvals = cbuf[:ctotal]
                                row_of = np.repeat(
                                    np.arange(nr, dtype=np.int64), F_c
                                )
                                cm = scratch.batch(
                                    "c_mask", ctotal, np.bool_
                                )[:ctotal]
                                cm[:] = True
                        else:
                            base_off = int(c_cum[r0 - 1]) if r0 else 0
                            ctotal = int(c_cum[r1 - 1]) - base_off
                            if ctotal:
                                lens_c = c_lens[r0:r1]
                                cbuf = scratch.batch("c_vals", ctotal)
                                gather_segments_into(
                                    concat_c, c_starts[r0:r1], lens_c, cbuf
                                )
                                cvals = cbuf[:ctotal]
                                row_of = np.repeat(
                                    np.arange(r1 - r0, dtype=np.int64), lens_c
                                )
                                cm = scratch.batch(
                                    "c_mask", ctotal, np.bool_
                                )[:ctotal]
                                first = True
                                for seg in c_fixed_segs:
                                    batch_membership_into(
                                        cvals, seg, cm, accumulate=not first
                                    )
                                    first = False
                                if fb.c_parent is not None:
                                    # Leaf binds to both in-batch levels:
                                    # sweep the parent-side constraint one
                                    # parent at a time — rows (hence
                                    # values) are parent-contiguous.
                                    pos_a, offs_a, concat_a = fb.c_parent
                                    pf = parent_flat[r0:r1]
                                    cuts = np.flatnonzero(np.diff(pf)) + 1
                                    row_b = np.concatenate(
                                        ([0], cuts, [r1 - r0])
                                    )
                                    voffs = np.concatenate(
                                        ([0], np.cumsum(lens_c))
                                    )
                                    for gi in range(row_b.size - 1):
                                        ra = int(row_b[gi])
                                        rz = int(row_b[gi + 1])
                                        if rz <= ra:
                                            continue
                                        w = int(W_grp[pf[ra]])
                                        pw = pos_a[w]
                                        seg = concat_a[
                                            offs_a[pw] : offs_a[pw + 1]
                                        ]
                                        lo = int(voffs[ra])
                                        hi = int(voffs[rz])
                                        batch_membership_into(
                                            cvals[lo:hi],
                                            seg,
                                            cm[lo:hi],
                                            accumulate=not first,
                                        )
                                    first = False
                                if first:
                                    cm[:] = True

                        if ctotal:
                            ctmp = scratch.batch("c_tmp", ctotal, np.bool_)
                            if has_prefix and fb.c_kind != "fixed":
                                batch_unused_into(cvals, used, cm, ctmp)
                            t = ctmp[:ctotal]
                            if wimg is not None:
                                np.not_equal(
                                    cvals, wimg[r0:r1][row_of], out=t
                                )
                                np.logical_and(cm, t, out=cm)
                            np.not_equal(cvals, v_flat[r0:r1][row_of], out=t)
                            np.logical_and(cm, t, out=cm)

                            sidx = np.flatnonzero(cm)
                            s = sidx.size
                            if s:
                                r_of_s = row_of[sidx]
                                senum = (
                                    row_charge[r0:r1][r_of_s]
                                    + (enum_start + survs_done + 1)
                                    + np.arange(s, dtype=np.int64)
                                )
                                matrix = None
                                if need_matrix:
                                    matrix = np.empty((s, n), dtype=np.int64)
                                    for d in range(max(pa, 0)):
                                        matrix[:, order[d]] = images[d]
                                    if wimg is not None:
                                        matrix[:, order[pa]] = wimg[r0:r1][
                                            r_of_s
                                        ]
                                    matrix[:, order[rb]] = v_flat[r0:r1][
                                        r_of_s
                                    ]
                                    matrix[:, order[lc]] = cvals[sidx]
                                survs_done += s
                                yield matrix, senum

                        # Consistent DFS position after this chunk: all
                        # parents up to the last touched row, all rows
                        # up to r1, all survivors so far.
                        if parent_flat is not None:
                            parents_part = parents_done + int(
                                parent_flat[r1 - 1]
                            ) + 1
                        elif W is not None:
                            parents_part = parents_done
                        else:
                            parents_part = 0
                        enum = (
                            enum_start
                            + parents_part
                            + (rows_done + r1)
                            + survs_done
                        )
                        if deadline is not None and enum >= next_check:
                            next_check = (
                                enum // check_every + 1
                            ) * check_every
                            if perf_counter() > deadline:
                                flags.timed_out = True
                                return

                if W is not None:
                    parents_done += g1 - g0
                rows_done += k
                enum = enum_start + parents_done + rows_done + survs_done
                if deadline is not None and enum >= next_check:
                    next_check = (enum // check_every + 1) * check_every
                    if perf_counter() > deadline:
                        flags.timed_out = True
                        return

        if n == 2:
            yield from frontier(None)
            return
        if n == 3:
            W = _local_candidates(
                0, backward, base_arrays, bindings, images, used, scratch
            )
            yield from frontier(W)
            return

        # ---- upper DFS over depths 0 .. pa-1 (n >= 4) --------------------
        top = pa - 1
        cand_stack: list[np.ndarray] = [_EMPTY] * pa
        len_stack: list[int] = [0] * pa
        pos_stack: list[int] = [0] * pa
        depth = 0
        arr = _local_candidates(
            0, backward, base_arrays, bindings, images, used, scratch
        )
        cand_stack[0] = arr
        len_stack[0] = arr.size
        pos_stack[0] = 0
        while depth >= 0:
            pos = pos_stack[depth]
            if pos >= len_stack[depth]:
                depth -= 1
                if depth >= 0:
                    used[images[depth]] = False
                continue
            pos_stack[depth] = pos + 1
            v = cand_stack[depth].item(pos)
            if used[v]:
                continue
            enum += 1
            if (
                deadline is not None
                and enum % check_every == 0
                and perf_counter() > deadline
            ):
                flags.timed_out = True
                return
            images[depth] = v
            used[v] = True
            if depth == top:
                W = _local_candidates(
                    pa, backward, base_arrays, bindings, images, used, scratch
                )
                yield from frontier(W)
                used[v] = False
                if flags.timed_out:
                    return
                continue
            depth += 1
            arr = _local_candidates(
                depth, backward, base_arrays, bindings, images, used, scratch
            )
            cand_stack[depth] = arr
            len_stack[depth] = arr.size
            pos_stack[depth] = 0
    finally:
        flags.num_enumerations = enum


def enumerate_vectorized(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    match_limit: int | None,
    deadline: float | None,
    check_every: int,
    record: bool,
    scratch: ScratchBuffers | None = None,
) -> tuple[int, int, bool, bool, list[tuple[int, ...]]]:
    """Batch driver; signature and return mirror ``enumerate_iterative``.

    Consumes the chunked core and applies ``match_limit`` exactly: a
    limit hit mid-chunk truncates using the per-survivor enum vector,
    so the reported ``#enum`` is the value the per-node DFS would have
    stopped at.  ``scratch`` optionally reuses one
    :class:`ScratchBuffers` across queries (the caller must not share
    it between concurrent runs).
    """
    flags = EnumerationCounters()
    inner = _enumerate_chunks(
        context, order, backward, deadline, check_every, flags, record, scratch
    )
    found = 0
    limited = False
    final_enum = None
    parts: list[np.ndarray] = []
    for matrix, senum in inner:
        count = senum.size
        if match_limit is not None and found + count >= match_limit:
            cut = match_limit - found
            found = match_limit
            limited = True
            final_enum = int(senum[cut - 1])
            if record:
                parts.append(matrix[:cut])
            inner.close()
            break
        found += count
        if record:
            parts.append(matrix)
    if final_enum is None:
        final_enum = flags.num_enumerations
    matches: list[tuple[int, ...]] = []
    if record and parts:
        stacked = parts[0] if len(parts) == 1 else np.concatenate(parts)
        matches = [tuple(row) for row in stacked.tolist()]
    return found, final_enum, flags.timed_out, limited, matches


def enumerate_lazy_vectorized(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    deadline: float | None,
    check_every: int,
    counters: EnumerationCounters,
) -> Iterator[tuple[int, ...]]:
    """Generator twin over the batched core; yields embeddings.

    Same contract as ``enumerate_lazy``: ``counters`` is refreshed with
    the exact DFS ``#enum`` before every yield, and on every way out of
    the frame — so a consumer that stops after ``k`` pulls observes
    precisely the counters a batch run with ``match_limit=k`` reports,
    even though whole chunks are computed ahead of the pulls.
    """
    flags = EnumerationCounters()
    inner = _enumerate_chunks(
        context, order, backward, deadline, check_every, flags, True, None
    )
    exhausted = False
    try:
        for matrix, senum in inner:
            enums = senum.tolist()
            rows = matrix.tolist()
            for j, row in enumerate(rows):
                counters.num_enumerations = enums[j]
                yield tuple(row)
        exhausted = True
    finally:
        inner.close()
        if exhausted:
            counters.num_enumerations = flags.num_enumerations
        counters.timed_out = flags.timed_out
