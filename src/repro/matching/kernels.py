"""Allocation-free set-intersection kernels for the DFS hot path.

The iterative enumeration engine computes one local candidate list per
extension attempt — millions of times per query on real workloads.  The
pre-kernel loop allocated on every single node: ``np.intersect1d`` built
(and sorted) a fresh result array, the injectivity filter
``arr[~used[arr]]`` materialized three temporaries, and ``arr.tolist()``
copied the survivors into a Python list.  This module replaces all of
that with kernels that write into scratch buffers owned by a
:class:`ScratchBuffers` object sized **once per query**:

* :func:`intersect_into` — intersection of two sorted unique arrays via
  a vectorized gallop (binary-search the smaller side into the larger),
  written into a caller-supplied buffer.  No sort, no result
  allocation; the one unavoidable temporary is ``searchsorted``'s index
  vector over the *smaller* input.
* :func:`intersect_unused_into` — the same gallop with the injectivity
  filter fused into the final write: the membership mask and the
  ``used`` mask combine before a single compress, so the intermediate
  "intersected but not yet filtered" array never exists.  This is the
  last step of every multi-backward-neighbour depth.
* :func:`filter_unused_into` — the standalone fused injectivity write,
  for callers that need a used-filtered copy of one sorted array.

Depths with zero or one backward neighbour need no kernel at all: their
local candidate list is a zero-copy *view* (the base candidate array,
or one ``(offsets, concat)`` slice of the flat per-edge index), and the
DFS driver applies injectivity per visit — one bool probe against the
dense ``used`` map, exactly the recursive engine's check, with used
vertices skipped before they count towards ``#enum``.  ``used`` is
constant while one depth's sibling loop runs, so per-visit probing and
list-build-time filtering admit the same candidates in the same order.

All kernels return the number of values written; the caller reads
``out[:length]``.  Output buffers must not alias the inputs (the
enumeration engine guarantees this by construction: candidate buffers
are per depth, ping-pong temporaries alternate).  The DFS cursors walk
the numpy views/buffers directly — the per-node ``tolist()``
materialization is gone entirely.

The frontier-batched backend (``enumeration_batch.py``) adds three
batched kernels on top: :func:`gather_segments_into` concatenates many
``(offsets, concat)`` segments into one flat batch in a single gather,
:func:`batch_membership_into` is the batched form of one
:func:`intersect_into` step (it produces the membership *mask* instead
of compressing, so several constraints AND together before one
compress), and :func:`batch_unused_into` is the batched injectivity
probe.  Their scratch comes from the same :class:`ScratchBuffers`
object via named growable batch buffers, so the peak batch footprint
is visible next to the per-depth capacities.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ScratchBuffers",
    "batch_membership_into",
    "batch_unused_into",
    "filter_unused_into",
    "gather_segments_into",
    "intersect_into",
    "intersect_unused_into",
]


def intersect_into(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, mask: np.ndarray | None = None
) -> int:
    """Write ``a ∩ b`` into ``out``; return the number of values written.

    ``a`` and ``b`` are sorted arrays of unique int64 vertex ids; the
    result (also sorted unique) lands in ``out[:returned length]``, so
    ``out`` must hold at least ``min(a.size, b.size)`` values and must
    not alias either input.  The kernel gallops: the smaller side is
    binary-searched into the larger (``O(s · log L)``), which beats
    ``np.intersect1d``'s concatenate-and-sort at every size ratio the
    enumeration produces and never allocates a result array.  ``mask``
    is an optional reusable bool scratch of at least ``min(a.size,
    b.size)`` entries; omitted, a temporary is allocated.
    """
    if a.size > b.size:
        a, b = b, a
    n = a.size
    if n == 0 or b.size == 0:
        return 0
    idx = b.searchsorted(a)
    np.minimum(idx, b.size - 1, out=idx)
    m = mask[:n] if mask is not None else np.empty(n, dtype=bool)
    np.equal(b[idx], a, out=m)
    k = int(np.count_nonzero(m))
    if k:
        a.compress(m, out=out[:k])
    return k


def filter_unused_into(
    arr: np.ndarray,
    used: np.ndarray,
    out: np.ndarray,
    mask: np.ndarray | None = None,
) -> int:
    """Write the entries of ``arr`` whose ``used`` flag is False into ``out``.

    The injectivity filter of Algorithm 2 Line 6, fused with the final
    candidate write: one gather into the bool scratch, one in-place
    negation, one compress into ``out`` — no intermediate copy of the
    unfiltered list.  ``used`` is the dense per-data-vertex bool map;
    ``out`` needs ``arr.size`` capacity and must not alias ``arr``.
    Returns the number of survivors.
    """
    n = arr.size
    if n == 0:
        return 0
    m = mask[:n] if mask is not None else np.empty(n, dtype=bool)
    used.take(arr, out=m)
    np.logical_not(m, out=m)
    k = int(np.count_nonzero(m))
    if k:
        arr.compress(m, out=out[:k])
    return k


def intersect_unused_into(
    a: np.ndarray,
    b: np.ndarray,
    used: np.ndarray,
    out: np.ndarray,
    mask: np.ndarray | None = None,
    mask2: np.ndarray | None = None,
) -> int:
    """Write ``{v ∈ a ∩ b : not used[v]}`` into ``out``; return the count.

    The fused tail of a multi-backward-neighbour depth: the last
    intersection and the injectivity filter combine into one mask and
    one compress, so the intersected-but-unfiltered array never
    materializes.  ``mask`` / ``mask2`` are independent bool scratches
    (membership and injectivity bits respectively); contracts otherwise
    as in :func:`intersect_into`.
    """
    if a.size > b.size:
        a, b = b, a
    n = a.size
    if n == 0 or b.size == 0:
        return 0
    idx = b.searchsorted(a)
    np.minimum(idx, b.size - 1, out=idx)
    m = mask[:n] if mask is not None else np.empty(n, dtype=bool)
    np.equal(b[idx], a, out=m)
    m2 = mask2[:n] if mask2 is not None else np.empty(n, dtype=bool)
    used.take(a, out=m2)
    np.logical_not(m2, out=m2)
    np.logical_and(m, m2, out=m)
    k = int(np.count_nonzero(m))
    if k:
        a.compress(m, out=out[:k])
    return k


def gather_segments_into(
    concat: np.ndarray,
    starts: np.ndarray,
    lens: np.ndarray,
    out: np.ndarray,
) -> int:
    """Concatenate ``concat[starts[i] : starts[i] + lens[i]]`` for all ``i``.

    The batched segment gather of the frontier backend: one
    ``np.take`` materializes every row's adjacency segment of a flat
    ``(offsets, concat)`` edge binding into ``out`` back to back,
    replacing one Python-level slice per row.  ``starts`` / ``lens``
    are int64 arrays of equal length; ``out`` needs ``lens.sum()``
    capacity.  Returns the total number of values written.  Segment
    values keep their per-segment sorted order, which is exactly the
    DFS sibling order.
    """
    total = int(lens.sum())
    if total == 0:
        return 0
    idx = np.arange(total, dtype=np.int64)
    # Shift each output slot by (segment start - running offset) so the
    # flat arange walks every segment in place: one repeat, one add.
    offs = np.cumsum(lens) - lens
    idx += np.repeat(starts - offs, lens)
    np.take(concat, idx, out=out[:total])
    return total


def batch_membership_into(
    vals: np.ndarray,
    reference: np.ndarray,
    out: np.ndarray,
    accumulate: bool = False,
) -> None:
    """Write (or AND in) ``vals[i] ∈ reference`` into ``out[: vals.size]``.

    The batched counterpart of one :func:`intersect_into` step:
    ``reference`` is one sorted unique segment shared by every value in
    the batch, and the kernel produces the membership *mask* rather
    than compressing, so several backward-edge constraints combine
    before a single compress.  With ``accumulate`` the mask ANDs into
    ``out`` instead of overwriting it.
    """
    n = vals.size
    if n == 0:
        return
    m = out[:n]
    if reference.size == 0:
        m[:] = False
        return
    idx = reference.searchsorted(vals)
    np.minimum(idx, reference.size - 1, out=idx)
    if accumulate:
        hit = np.equal(reference[idx], vals)
        np.logical_and(m, hit, out=m)
    else:
        np.equal(reference[idx], vals, out=m)


def batch_unused_into(
    vals: np.ndarray,
    used: np.ndarray,
    out: np.ndarray,
    tmp: np.ndarray,
) -> None:
    """AND ``not used[vals[i]]`` into ``out[: vals.size]``.

    The batched injectivity probe: one gather from the dense ``used``
    map, one negation, one AND — the vectorized form of the per-visit
    ``used[v]`` check, applied to a whole frontier at once.  ``tmp`` is
    a bool scratch of at least ``vals.size`` entries.
    """
    n = vals.size
    if n == 0:
        return
    t = tmp[:n]
    used.take(vals, out=t)
    np.logical_not(t, out=t)
    np.logical_and(out[:n], t, out=out[:n])


class ScratchBuffers:
    """Per-query scratch for the iterative DFS, sized once in binding.

    ``cand[i]`` is depth ``i``'s candidate buffer: when depth ``i`` has
    two or more backward neighbours, its intersected candidate list
    lives here while every deeper frame runs, so these are strictly per
    depth (zero/one-backward depths walk zero-copy views instead and get
    a zero-capacity slot).  ``tmp_a`` / ``tmp_b`` are the two ping-pong
    buffers that multi-backward-neighbour depths intersect through
    (transient within one local-candidate computation, hence shared
    across depths), and ``mask`` / ``mask2`` are the shared bool
    scratches the kernels filter through.  Capacities come from the
    per-depth bounds computed by ``_bind_depths`` (the smallest backward
    neighbour's longest adjacency list — smallest-first intersection can
    never produce more), so no kernel call can overrun.

    A ``ScratchBuffers`` object is reusable across queries:
    :meth:`ensure_depths` re-binds the same object to a new query's
    capacities, growing geometrically and never shrinking, so a
    ``Matcher`` serving queries of varying sizes touches the allocator
    a bounded number of times instead of once per query.  The
    frontier-batched backend additionally draws named growable batch
    buffers from :meth:`batch`; ``peak_nbytes`` reports the high-water
    footprint across everything, which is how the bench makes the
    batch-width memory cost visible.
    """

    __slots__ = ("cand", "tmp_a", "tmp_b", "mask", "mask2", "_batch", "_peak_nbytes")

    def __init__(self, depth_capacities: list[int]):
        self.cand = [np.empty(c, dtype=np.int64) for c in depth_capacities]
        cap = max(depth_capacities, default=0)
        self.tmp_a = np.empty(cap, dtype=np.int64)
        self.tmp_b = np.empty(cap, dtype=np.int64)
        self.mask = np.empty(cap, dtype=bool)
        self.mask2 = np.empty(cap, dtype=bool)
        self._batch: dict[str, np.ndarray] = {}
        self._peak_nbytes = 0
        self._note_peak()

    def ensure_depths(self, depth_capacities: list[int]) -> "ScratchBuffers":
        """Re-bind this object to a new query, growing buffers as needed.

        Existing buffers are kept whenever they are already large
        enough; a buffer that must grow jumps to at least double its
        current size (geometric growth — a rising sequence of query
        sizes costs amortized O(1) reallocations per query, not one per
        query).  Nothing ever shrinks, so ``nbytes`` is monotone over
        the object's lifetime.  Returns ``self``.
        """
        for i, c in enumerate(depth_capacities):
            if i >= len(self.cand):
                self.cand.append(np.empty(c, dtype=np.int64))
            elif self.cand[i].size < c:
                self.cand[i] = np.empty(max(c, 2 * self.cand[i].size), dtype=np.int64)
        cap = max(depth_capacities, default=0)
        if self.tmp_a.size < cap:
            grown = max(cap, 2 * self.tmp_a.size)
            self.tmp_a = np.empty(grown, dtype=np.int64)
            self.tmp_b = np.empty(grown, dtype=np.int64)
            self.mask = np.empty(grown, dtype=bool)
            self.mask2 = np.empty(grown, dtype=bool)
        self._note_peak()
        return self

    def batch(self, name: str, size: int, dtype: type = np.int64) -> np.ndarray:
        """Return the named growable batch buffer with ≥ ``size`` capacity.

        Batch buffers back the frontier backend's flat ``(B, k)``
        scratch (candidate values, row indices, masks).  Growth is
        geometric with a floor, so a frontier loop over thousands of
        chunks reallocates a handful of times at most.  The caller
        slices ``[:size]``; contents are undefined on entry.
        """
        buf = self._batch.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            grown = max(size, 0 if buf is None else 2 * buf.size, 1024)
            buf = np.empty(grown, dtype=dtype)
            self._batch[name] = buf
            self._note_peak()
        return buf

    def nbytes(self) -> int:
        """Total scratch footprint (candidate + ping-pong + mask + batch)."""
        return (
            sum(buf.nbytes for buf in self.cand)
            + self.tmp_a.nbytes
            + self.tmp_b.nbytes
            + self.mask.nbytes
            + self.mask2.nbytes
            + sum(buf.nbytes for buf in self._batch.values())
        )

    @property
    def peak_nbytes(self) -> int:
        """High-water ``nbytes`` over this object's lifetime.

        Buffers never shrink, so within one query this is monotone
        non-decreasing; across reuse it records the widest frontier any
        query ever needed.
        """
        return self._peak_nbytes

    def _note_peak(self) -> None:
        total = self.nbytes()
        if total > self._peak_nbytes:
            self._peak_nbytes = total
