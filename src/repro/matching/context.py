"""Shared per-(query, data) matching artifacts — the Phase (1) product.

The paper's framework (Algorithm 1) computes candidate sets once per
query and reuses them across ordering and enumeration.  This repo's
enumeration additionally relies on the :class:`CandidateSpace` per-edge
index; historically each enumerator rebuilt (or LRU-cached) that index
privately, which made "how many times was Phase (1) paid?" depend on
cache hits.  :class:`MatchingContext` makes the sharing explicit: it
bundles the query, the data graph, the candidate sets and the (lazily
or eagerly built) candidate space into one object that
:class:`~repro.matching.engine.MatchingEngine`, the orderers, both
enumeration engines, the RL reward rollouts and the benchmark harness
all pass around.

``MatchingEngine.run`` builds the space exactly once, inside the
filtering phase (so it is billed to ``filter_time``, as the paper bills
all Phase (1) work); standalone callers that construct a context
directly get the space on first use of :attr:`MatchingContext.space`.

Concurrency: once built, a context is read-only — both enumeration
engines and the orderers treat the candidate arrays and the per-edge
index as immutable, which is what lets the service layer execute one
cached plan (one shared context) from many threads at once.  The only
mutation after construction is the lazy :attr:`MatchingContext.space`
build itself: two threads racing on first access may each build the
(identical, deterministic) index and one wins the single-assignment —
wasteful, never wrong.  Callers that interleave
:meth:`MatchingContext.release_space` with concurrent enumeration give
up that guarantee; long-lived cached plans should release only when
quiescent.
"""

from __future__ import annotations

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidate_space import CandidateSpace
from repro.matching.candidates import CandidateSets

__all__ = ["MatchingContext"]


class MatchingContext:
    """One matching instance: query, data, candidates, shared space.

    Parameters
    ----------
    query / data:
        The matching instance.
    candidates:
        Complete candidate sets from any Phase (1) filter.
    stats:
        Optional precomputed :class:`GraphStats` of ``data`` (orderers
        use them; enumeration does not).
    """

    __slots__ = ("query", "data", "candidates", "stats", "_space")

    def __init__(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        stats: GraphStats | None = None,
    ):
        if candidates.num_query_vertices != query.num_vertices:
            raise FilterError("candidate sets do not cover the query")
        self.query = query
        self.data = data
        self.candidates = candidates
        self.stats = stats
        self._space: CandidateSpace | None = None

    @property
    def space(self) -> CandidateSpace:
        """The per-edge candidate index, built on first access."""
        if self._space is None:
            self._space = CandidateSpace(self.query, self.data, self.candidates)
        return self._space

    @property
    def has_space(self) -> bool:
        """Whether the candidate space has been built yet."""
        return self._space is not None

    def ensure_space(self) -> CandidateSpace:
        """Build the candidate space now (Phase (1) billing point)."""
        return self.space

    def release_space(self) -> None:
        """Drop the built candidate space (it rebuilds on next access).

        Long-lived context caches (e.g. the RL trainer's per-query cache)
        call this once a burst of enumerations is done, so the dense
        position maps and flat buffers of many instances are never
        resident at once.
        """
        self._space = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MatchingContext(query={self.query!r}, data={self.data!r}, "
            f"space={'built' if self.has_space else 'pending'})"
        )
