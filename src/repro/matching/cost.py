"""Static matching-order cost estimation.

Before running the (potentially exponential) enumeration, the expected
search-tree size of an order can be estimated from candidate cardinalities
and data-graph density — the classical left-deep join cardinality
estimate that CFL's path ordering and GraphQL's greedy ordering optimize
implicitly.  The estimate for prefix ``φ[0..i]`` multiplies ``|C(φ_0)|``
by, for each later vertex, its candidate count damped once per backward
neighbour by the edge selectivity ``avg_degree / |V(G)|``.

This is *not* used by any reproduction experiment (the paper measures
real ``#enum``); it exists as analysis tooling — e.g. to cheaply rank
candidate orders, or in tests as a sanity correlation target.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import InvalidOrderError
from repro.graphs.graph import Graph
from repro.graphs.validation import check_order
from repro.matching.candidates import CandidateSets

__all__ = ["estimate_order_cost", "rank_orders"]


def estimate_order_cost(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    order: Sequence[int],
) -> float:
    """Estimated number of partial embeddings explored along ``order``.

    Returns the sum over prefixes of the estimated prefix-embedding
    counts (mirroring ``#enum``, which counts recursive calls at every
    depth).  Independence assumptions make this a coarse estimate; its
    value is *relative* comparison between orders, not absolute accuracy.
    """
    order = [int(u) for u in order]
    check_order(query, order, connected=False)
    if candidates.num_query_vertices != query.num_vertices:
        raise InvalidOrderError("candidate sets do not cover the query")
    if not order:
        return 1.0

    nv = max(data.num_vertices, 1)
    # Probability that a specific data vertex is adjacent to another
    # specific data vertex (uniform edge model).
    edge_prob = min(1.0, data.average_degree / nv)

    position = {u: i for i, u in enumerate(order)}
    total = 0.0
    prefix_count = 1.0
    for i, u in enumerate(order):
        backward = sum(
            1 for v in query.neighbors(u) if position[int(v)] < i
        )
        expansion = candidates.size(u) * (edge_prob**backward) if backward else (
            candidates.size(u)
        )
        prefix_count *= max(expansion, 1e-12)
        total += prefix_count
    return total


def rank_orders(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    orders: Sequence[Sequence[int]],
) -> list[tuple[float, list[int]]]:
    """Orders sorted by estimated cost, cheapest first."""
    scored = [
        (estimate_order_cost(query, data, candidates, order), [int(u) for u in order])
        for order in orders
    ]
    scored.sort(key=lambda item: item[0])
    return scored
