"""Maximum bipartite matching (Hopcroft–Karp) for GQL global refinement.

GraphQL's global refinement (Sec. II-C) keeps data vertex ``v`` in ``C(u)``
only if the bipartite graph between ``N(u)`` and ``N(v)`` — with an edge
``(u', v')`` whenever ``v' ∈ C(u')`` — admits a *semi-perfect* matching,
i.e. one saturating every vertex of ``N(u)``.  (The paper's text phrases
the saturated side as ``N(v)``; saturating the query side ``N(u)`` is the
condition that makes refinement sound for finding embeddings of q, and is
what the GraphQL algorithm computes.)
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

__all__ = ["hopcroft_karp", "has_semi_perfect_matching"]

_INF = float("inf")


def hopcroft_karp(adjacency: Sequence[Sequence[int]], num_right: int) -> int:
    """Size of a maximum matching in a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` lists the right-side vertices adjacent to left
        vertex ``i``; left vertices are ``0..len(adjacency)-1``.
    num_right:
        Number of right-side vertices.

    Returns
    -------
    int
        The maximum matching cardinality.  Runs in ``O(E sqrt(V))``.
    """
    num_left = len(adjacency)
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    dist = [0.0] * num_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    matching = 0
    while bfs():
        for u in range(num_left):
            if match_left[u] == -1 and dfs(u):
                matching += 1
    return matching


def has_semi_perfect_matching(
    adjacency: Sequence[Sequence[int]], num_right: int
) -> bool:
    """Whether a matching saturating every left vertex exists."""
    num_left = len(adjacency)
    if num_left > num_right:
        return False
    if any(len(nbrs) == 0 for nbrs in adjacency):
        return False
    return hopcroft_karp(adjacency, num_right) == num_left
