"""Iterative, array-based enumeration core (explicit stack, no recursion).

The recursive engine in :mod:`repro.matching.enumeration` spends one
Python stack frame per query vertex, so a query path longer than the
interpreter's recursion limit raises :class:`RecursionError` before the
search even gets going.  This module holds the flat replacement: a DFS
driven by per-depth cursors into *sorted numpy candidate arrays*, in the
style of LIVE's and NeuSO's index-driven enumeration loops.

Local candidates at depth ``i`` are computed by the buffered galloping
kernels of :mod:`repro.matching.kernels` over the
:class:`~repro.matching.candidate_space.CandidateSpace` flat per-edge
index: each per-depth binding is a ``(positions, offsets, concat)``
array triple, so resolving a backward neighbour's adjacency list is two
array indexings — no dict probes on the hot path.  Depths with at most
one backward neighbour walk a **zero-copy view** (the base candidate
array or one slice of the flat index) with injectivity probed per visit
against the dense ``used`` map; multi-neighbour depths gallop
smallest-first through two ping-pong scratch buffers with the
injectivity mask fused into the final write, landing in a per-depth
candidate buffer owned by a
:class:`~repro.matching.kernels.ScratchBuffers` sized once per query.
The DFS allocates nothing per node, and its cursors walk the numpy
views directly (no ``tolist()``).

The traversal visits candidates in ascending vertex order — exactly the
order the recursive engine's sorted adjacency scans produce — so the two
engines yield *identical* match sequences and identical ``#enum``
counts, including under ``match_limit`` truncation.  That equivalence is
what lets the recursive engine serve as a differential-testing oracle.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro.matching.context import MatchingContext
from repro.matching.kernels import (
    ScratchBuffers,
    intersect_into,
    intersect_unused_into,
)

__all__ = ["EnumerationCounters", "intersect_sorted", "enumerate_iterative", "enumerate_lazy"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)

#: When one sorted array is this many times longer than the other,
#: binary-searching the long one beats the linear merge.
_GALLOP_RATIO = 16


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted arrays of unique int64 vertex ids.

    Dispatches between ``np.intersect1d`` (comparable sizes) and a
    galloping ``searchsorted`` membership test (lopsided sizes).  This
    is the allocating convenience form; the enumeration hot path uses
    :func:`repro.matching.kernels.intersect_into`, which writes into
    reusable scratch instead.
    """
    if a.size == 0 or b.size == 0:
        return _EMPTY
    if a.size > b.size:
        a, b = b, a
    if b.size >= _GALLOP_RATIO * a.size:
        idx = np.searchsorted(b, a)
        mask = idx < b.size
        mask[mask] = b[idx[mask]] == a[mask]
        return a[mask]
    return np.intersect1d(a, b, assume_unique=True)


def _max_segment(offsets: np.ndarray) -> int:
    """Longest adjacency list in one flat ``(offsets, concat)`` binding."""
    if offsets.size < 2:
        return 0
    return int(np.max(offsets[1:] - offsets[:-1]))


def _bind_depths(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    scratch: ScratchBuffers | None = None,
) -> tuple[
    list[np.ndarray],
    list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    ScratchBuffers,
]:
    """Pre-bind, per depth, the base candidate array and the flat
    ``(positions, offsets, concat)`` triple of every backward neighbour's
    edge direction, so that at runtime resolving one adjacency list is
    ``positions[image]`` plus an ``offsets`` slice.  Also sizes the
    per-query :class:`ScratchBuffers`: only depths with two or more
    backward neighbours write into scratch (the others walk zero-copy
    views), and their buffers are bounded by the smallest backward
    binding's longest adjacency list — smallest-first intersection can
    never produce more.  Passing an existing ``scratch`` re-binds it via
    :meth:`ScratchBuffers.ensure_depths` instead of allocating, so one
    scratch object can serve many queries of different sizes."""
    candidates = context.candidates
    space = context.space
    base_arrays = [candidates.array(u) for u in order]
    bindings = [
        [space.edge_flat(order[b], u) for b in backward[i]]
        for i, u in enumerate(order)
    ]
    capacities = [
        min(_max_segment(offsets) for _, offsets, _ in bindings[i])
        if len(backward[i]) > 1
        else 0
        for i in range(len(order))
    ]
    if scratch is None:
        return base_arrays, bindings, ScratchBuffers(capacities)
    return base_arrays, bindings, scratch.ensure_depths(capacities)


def _local_candidates(
    depth: int,
    backward: Sequence[Sequence[int]],
    base_arrays: list[np.ndarray],
    bindings: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    images: list[int],
    used: np.ndarray,
    scratch: ScratchBuffers,
) -> np.ndarray:
    """Local candidate list at ``depth`` (Line 6 of Algorithm 2), shared
    by the batch and the generator drivers so their visit order — and
    therefore match sequences and ``#enum`` — cannot drift apart.

    Returns a sorted array the driver's cursor walks directly: a
    zero-copy view (the base candidate array, or one slice of the flat
    per-edge index) when the depth has at most one backward neighbour,
    or a view of ``scratch.cand[depth]`` holding the smallest-first
    ping-pong intersection when it has several.  Injectivity: the
    multi-neighbour path fuses the ``used`` mask into its final write;
    the view paths leave it to the driver's per-visit probe.  ``used``
    is constant while this depth's sibling loop runs, so both filter
    points admit the same candidates — used vertices never count
    towards ``#enum`` in either engine.
    """
    backs = backward[depth]
    if not backs:
        return base_arrays[depth]
    if len(backs) == 1:
        positions, offsets, concat = bindings[depth][0]
        p = positions[images[backs[0]]]
        return concat[offsets[p] : offsets[p + 1]]
    arrays = []
    for (positions, offsets, concat), b in zip(bindings[depth], backs):
        p = positions[images[b]]
        arrays.append(concat[offsets[p] : offsets[p + 1]])
    arrays.sort(key=len)
    # Intersect smallest-first through the two ping-pong buffers; the
    # last intersection fuses the injectivity filter and writes straight
    # into this depth's candidate buffer.
    arr = arrays[0]
    tmp, spare = scratch.tmp_a, scratch.tmp_b
    for other in arrays[1:-1]:
        if not arr.size:
            return _EMPTY
        length = intersect_into(arr, other, tmp, scratch.mask)
        arr = tmp[:length]
        tmp, spare = spare, tmp
    if not arr.size:
        return _EMPTY
    out = scratch.cand[depth]
    length = intersect_unused_into(
        arr, arrays[-1], used, out, scratch.mask, scratch.mask2
    )
    return out[:length]


def enumerate_iterative(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    match_limit: int | None,
    deadline: float | None,
    check_every: int,
    record: bool,
) -> tuple[int, int, bool, bool, list[tuple[int, ...]]]:
    """Run the explicit-stack DFS; returns raw counters, not a result.

    Parameters mirror one :meth:`Enumerator.run` invocation after its
    shared validation: ``context`` carries the instance (its
    :class:`CandidateSpace` is built on first access when the engine
    runs standalone; the matching engine pre-builds it in Phase (1)),
    ``backward`` lists backward-neighbour *positions* per position in
    ``order``, and ``deadline`` is an absolute ``time.perf_counter``
    timestamp.

    Returns ``(num_matches, num_enumerations, timed_out, limit_reached,
    matches)`` with ``#enum`` counted exactly as the recursive engine
    counts calls: one for the root plus one per extension attempt.
    """
    n = len(order)
    last = n - 1
    used = np.zeros(context.data.num_vertices, dtype=bool)
    base_arrays, bindings, scratch = _bind_depths(context, order, backward)
    # Per-depth frames: the local candidate array (a view — see
    # _local_candidates) and a cursor into it.
    cand_stack: list[np.ndarray] = [_EMPTY] * n
    len_stack: list[int] = [0] * n
    pos_stack: list[int] = [0] * n
    images: list[int] = [0] * n
    matches: list[tuple[int, ...]] = []
    found = 0
    timed_out = limited = False
    perf_counter = time.perf_counter

    # Root "call" (recurse(0) in the recursive engine).
    enum = 1
    if deadline is not None and enum % check_every == 0 and perf_counter() > deadline:
        return 0, enum, True, False, matches
    depth = 0
    arr = _local_candidates(0, backward, base_arrays, bindings, images, used, scratch)
    cand_stack[0] = arr
    len_stack[0] = arr.size
    pos_stack[0] = 0

    while depth >= 0:
        pos = pos_stack[depth]
        if pos >= len_stack[depth]:
            # Frame exhausted: backtrack and free the parent's image.
            depth -= 1
            if depth >= 0:
                used[images[depth]] = False
            continue
        pos_stack[depth] = pos + 1
        v = cand_stack[depth].item(pos)
        if used[v]:
            # Injectivity probe for the zero-copy candidate views; an
            # already-mapped vertex is skipped before it counts, exactly
            # as a pre-filtered list never contains it.
            continue
        enum += 1
        if (
            deadline is not None
            and enum % check_every == 0
            and perf_counter() > deadline
        ):
            timed_out = True
            break
        images[depth] = v
        if depth == last:
            found += 1
            if record:
                by_query_vertex = [0] * n
                for p in range(n):
                    by_query_vertex[order[p]] = images[p]
                matches.append(tuple(by_query_vertex))
            if match_limit is not None and found >= match_limit:
                limited = True
                break
            continue
        used[v] = True
        depth += 1
        arr = _local_candidates(
            depth, backward, base_arrays, bindings, images, used, scratch
        )
        cand_stack[depth] = arr
        len_stack[depth] = arr.size
        pos_stack[depth] = 0

    return found, enum, timed_out, limited, matches


class EnumerationCounters:
    """Mutable side-channel for :func:`enumerate_lazy`.

    A suspended generator cannot return counters, so the lazy driver
    publishes them here instead.  The contract: the fields are current
    whenever the *started* generator has just yielded, returned, raised,
    or been closed — the driver refreshes ``num_enumerations`` before
    every yield and, via ``try/finally``, on every way out of the frame,
    including a ``close()`` between pulls.  A generator that is closed
    before its first pull never ran at all, so it cannot refresh
    anything; :class:`~repro.matching.enumeration.MatchStream` covers
    that window by pre-charging the root step at stream creation.
    """

    __slots__ = ("num_enumerations", "timed_out")

    def __init__(self) -> None:
        self.num_enumerations = 0
        self.timed_out = False


def enumerate_lazy(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    deadline: float | None,
    check_every: int,
    counters: EnumerationCounters,
) -> Iterator[tuple[int, ...]]:
    """Generator twin of :func:`enumerate_iterative`: yields embeddings.

    Runs the same explicit-stack DFS over the same per-depth bindings and
    :func:`_local_candidates`, but suspends at every match instead of
    accumulating, yielding the embedding as a tuple indexed by query
    vertex.  The DFS state lives in the suspended generator frame, so a
    consumer that stops after ``k`` matches pays only the search explored
    up to the ``k``-th match — exactly the ``#enum`` the batch driver
    reports under ``match_limit=k``.

    There is deliberately no match limit here: truncation is the
    consumer's move (stop iterating / ``close()`` the generator), which
    keeps one definition of "stop after the k-th match" for both drivers.
    ``counters`` is refreshed before every yield and — via the
    ``try/finally`` — on every exit from the frame: exhaustion, timeout,
    an exception, or a ``close()`` between pulls.  ``deadline`` is
    absolute ``time.perf_counter`` time, so wall clock the *consumer*
    spends between pulls counts against it too.
    """
    n = len(order)
    last = n - 1
    used = np.zeros(context.data.num_vertices, dtype=bool)
    base_arrays, bindings, scratch = _bind_depths(context, order, backward)
    cand_stack: list[np.ndarray] = [_EMPTY] * n
    len_stack: list[int] = [0] * n
    pos_stack: list[int] = [0] * n
    images: list[int] = [0] * n
    perf_counter = time.perf_counter

    enum = 1
    try:
        counters.num_enumerations = enum
        if deadline is not None and enum % check_every == 0 and perf_counter() > deadline:
            counters.timed_out = True
            return
        depth = 0
        arr = _local_candidates(
            0, backward, base_arrays, bindings, images, used, scratch
        )
        cand_stack[0] = arr
        len_stack[0] = arr.size
        pos_stack[0] = 0

        while depth >= 0:
            pos = pos_stack[depth]
            if pos >= len_stack[depth]:
                depth -= 1
                if depth >= 0:
                    used[images[depth]] = False
                continue
            pos_stack[depth] = pos + 1
            v = cand_stack[depth].item(pos)
            if used[v]:
                # Injectivity probe for the zero-copy candidate views;
                # skipped vertices never count towards #enum.
                continue
            enum += 1
            if (
                deadline is not None
                and enum % check_every == 0
                and perf_counter() > deadline
            ):
                counters.timed_out = True
                return
            images[depth] = v
            if depth == last:
                by_query_vertex = [0] * n
                for p in range(n):
                    by_query_vertex[order[p]] = images[p]
                counters.num_enumerations = enum
                yield tuple(by_query_vertex)
                continue
            used[v] = True
            depth += 1
            arr = _local_candidates(
                depth, backward, base_arrays, bindings, images, used, scratch
            )
            cand_stack[depth] = arr
            len_stack[depth] = arr.size
            pos_stack[depth] = 0
    finally:
        # One refresh on every way out — normal exhaustion, timeout,
        # GeneratorExit from a close() between pulls, or an exception —
        # so the published counters can never go stale.
        counters.num_enumerations = enum
