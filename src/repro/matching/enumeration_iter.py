"""Iterative, array-based enumeration core (explicit stack, no recursion).

The recursive engine in :mod:`repro.matching.enumeration` spends one
Python stack frame per query vertex, so a query path longer than the
interpreter's recursion limit raises :class:`RecursionError` before the
search even gets going.  This module holds the flat replacement: a DFS
driven by per-depth cursors into *sorted numpy candidate arrays*, in the
style of LIVE's and NeuSO's index-driven enumeration loops.

Local candidates at depth ``i`` are computed by sorted-array
intersection (:func:`intersect_sorted` — ``np.intersect1d`` for balanced
inputs, a ``searchsorted`` gallop when one side dwarfs the other) over
the :class:`~repro.matching.candidate_space.CandidateSpace` flat per-edge
index: each per-depth binding is a ``(positions, offsets, concat)``
array triple, so resolving a backward neighbour's adjacency list is two
array indexings — no dict probes on the hot path.  Injectivity is one
vectorised boolean mask.

The traversal visits candidates in ascending vertex order — exactly the
order the recursive engine's sorted adjacency scans produce — so the two
engines yield *identical* match sequences and identical ``#enum``
counts, including under ``match_limit`` truncation.  That equivalence is
what lets the recursive engine serve as a differential-testing oracle.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro.matching.context import MatchingContext

__all__ = ["EnumerationCounters", "intersect_sorted", "enumerate_iterative", "enumerate_lazy"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)

#: When one sorted array is this many times longer than the other,
#: binary-searching the long one beats the linear merge.
_GALLOP_RATIO = 16


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted arrays of unique int64 vertex ids.

    Dispatches between ``np.intersect1d`` (comparable sizes) and a
    galloping ``searchsorted`` membership test (lopsided sizes).
    """
    if a.size == 0 or b.size == 0:
        return _EMPTY
    if a.size > b.size:
        a, b = b, a
    if b.size >= _GALLOP_RATIO * a.size:
        idx = np.searchsorted(b, a)
        mask = idx < b.size
        mask[mask] = b[idx[mask]] == a[mask]
        return a[mask]
    return np.intersect1d(a, b, assume_unique=True)


def _bind_depths(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
) -> tuple[list[np.ndarray], list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]]]:
    """Pre-bind, per depth, the base candidate array and the flat
    ``(positions, offsets, concat)`` triple of every backward neighbour's
    edge direction, so that at runtime resolving one adjacency list is
    ``positions[image]`` plus an ``offsets`` slice."""
    candidates = context.candidates
    space = context.space
    base_arrays = [candidates.array(u) for u in order]
    bindings = [
        [space.edge_flat(order[b], u) for b in backward[i]]
        for i, u in enumerate(order)
    ]
    return base_arrays, bindings


def _local_candidates(
    depth: int,
    backward: Sequence[Sequence[int]],
    base_arrays: list[np.ndarray],
    bindings: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    images: list[int],
    used: np.ndarray,
) -> list[int]:
    """Local candidate list at ``depth`` (Line 6 of Algorithm 2), shared
    by the batch and the generator drivers so their visit order — and
    therefore match sequences and ``#enum`` — cannot drift apart."""
    backs = backward[depth]
    if not backs:
        arr = base_arrays[depth]
    elif len(backs) == 1:
        positions, offsets, concat = bindings[depth][0]
        p = positions[images[backs[0]]]
        arr = concat[offsets[p] : offsets[p + 1]]
    else:
        arrays = []
        for (positions, offsets, concat), b in zip(bindings[depth], backs):
            p = positions[images[b]]
            arrays.append(concat[offsets[p] : offsets[p + 1]])
        arrays.sort(key=len)
        arr = arrays[0]
        for other in arrays[1:]:
            if not arr.size:
                break
            arr = intersect_sorted(arr, other)
    if arr.size:
        # Injectivity: drop images of mapped ancestors.  `used` is
        # constant while this depth's sibling loop runs, so filtering
        # here is equivalent to the recursive engine's per-visit check
        # (used vertices never count towards #enum in either engine).
        arr = arr[~used[arr]]
    return arr.tolist()


def enumerate_iterative(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    match_limit: int | None,
    deadline: float | None,
    check_every: int,
    record: bool,
) -> tuple[int, int, bool, bool, list[tuple[int, ...]]]:
    """Run the explicit-stack DFS; returns raw counters, not a result.

    Parameters mirror one :meth:`Enumerator.run` invocation after its
    shared validation: ``context`` carries the instance (its
    :class:`CandidateSpace` is built on first access when the engine
    runs standalone; the matching engine pre-builds it in Phase (1)),
    ``backward`` lists backward-neighbour *positions* per position in
    ``order``, and ``deadline`` is an absolute ``time.perf_counter``
    timestamp.

    Returns ``(num_matches, num_enumerations, timed_out, limit_reached,
    matches)`` with ``#enum`` counted exactly as the recursive engine
    counts calls: one for the root plus one per extension attempt.
    """
    n = len(order)
    last = n - 1
    used = np.zeros(context.data.num_vertices, dtype=bool)
    # Per-depth frames: the local candidate list and a cursor into it.
    cand_stack: list[list[int]] = [[]] * n
    pos_stack: list[int] = [0] * n
    images: list[int] = [0] * n
    matches: list[tuple[int, ...]] = []
    found = 0
    timed_out = limited = False
    perf_counter = time.perf_counter
    base_arrays, bindings = _bind_depths(context, order, backward)

    # Root "call" (recurse(0) in the recursive engine).
    enum = 1
    if deadline is not None and enum % check_every == 0 and perf_counter() > deadline:
        return 0, enum, True, False, matches
    depth = 0
    cand_stack[0] = _local_candidates(0, backward, base_arrays, bindings, images, used)
    pos_stack[0] = 0

    while depth >= 0:
        cands = cand_stack[depth]
        pos = pos_stack[depth]
        if pos >= len(cands):
            # Frame exhausted: backtrack and free the parent's image.
            depth -= 1
            if depth >= 0:
                used[images[depth]] = False
            continue
        pos_stack[depth] = pos + 1
        v = cands[pos]
        enum += 1
        if (
            deadline is not None
            and enum % check_every == 0
            and perf_counter() > deadline
        ):
            timed_out = True
            break
        images[depth] = v
        if depth == last:
            found += 1
            if record:
                by_query_vertex = [0] * n
                for p in range(n):
                    by_query_vertex[order[p]] = images[p]
                matches.append(tuple(by_query_vertex))
            if match_limit is not None and found >= match_limit:
                limited = True
                break
            continue
        used[v] = True
        depth += 1
        cand_stack[depth] = _local_candidates(
            depth, backward, base_arrays, bindings, images, used
        )
        pos_stack[depth] = 0

    return found, enum, timed_out, limited, matches


class EnumerationCounters:
    """Mutable side-channel for :func:`enumerate_lazy`.

    A suspended generator cannot return counters, so the lazy driver
    publishes them here instead.  The contract: the fields are current
    whenever the generator has just yielded, returned, or been closed —
    *not* at arbitrary points between.
    """

    __slots__ = ("num_enumerations", "timed_out")

    def __init__(self) -> None:
        self.num_enumerations = 0
        self.timed_out = False


def enumerate_lazy(
    context: MatchingContext,
    order: Sequence[int],
    backward: Sequence[Sequence[int]],
    deadline: float | None,
    check_every: int,
    counters: EnumerationCounters,
) -> Iterator[tuple[int, ...]]:
    """Generator twin of :func:`enumerate_iterative`: yields embeddings.

    Runs the same explicit-stack DFS over the same per-depth bindings and
    :func:`_local_candidates`, but suspends at every match instead of
    accumulating, yielding the embedding as a tuple indexed by query
    vertex.  The DFS state lives in the suspended generator frame, so a
    consumer that stops after ``k`` matches pays only the search explored
    up to the ``k``-th match — exactly the ``#enum`` the batch driver
    reports under ``match_limit=k``.

    There is deliberately no match limit here: truncation is the
    consumer's move (stop iterating / ``close()`` the generator), which
    keeps one definition of "stop after the k-th match" for both drivers.
    ``counters`` is refreshed before every yield and on exhaustion or
    timeout; ``deadline`` is absolute ``time.perf_counter`` time, so wall
    clock the *consumer* spends between pulls counts against it too.
    """
    n = len(order)
    last = n - 1
    used = np.zeros(context.data.num_vertices, dtype=bool)
    cand_stack: list[list[int]] = [[]] * n
    pos_stack: list[int] = [0] * n
    images: list[int] = [0] * n
    perf_counter = time.perf_counter
    base_arrays, bindings = _bind_depths(context, order, backward)

    enum = 1
    counters.num_enumerations = enum
    if deadline is not None and enum % check_every == 0 and perf_counter() > deadline:
        counters.timed_out = True
        return
    depth = 0
    cand_stack[0] = _local_candidates(0, backward, base_arrays, bindings, images, used)
    pos_stack[0] = 0

    while depth >= 0:
        cands = cand_stack[depth]
        pos = pos_stack[depth]
        if pos >= len(cands):
            depth -= 1
            if depth >= 0:
                used[images[depth]] = False
            continue
        pos_stack[depth] = pos + 1
        v = cands[pos]
        enum += 1
        if (
            deadline is not None
            and enum % check_every == 0
            and perf_counter() > deadline
        ):
            counters.num_enumerations = enum
            counters.timed_out = True
            return
        images[depth] = v
        if depth == last:
            by_query_vertex = [0] * n
            for p in range(n):
                by_query_vertex[order[p]] = images[p]
            counters.num_enumerations = enum
            yield tuple(by_query_vertex)
            continue
        used[v] = True
        depth += 1
        cand_stack[depth] = _local_candidates(
            depth, backward, base_arrays, bindings, images, used
        )
        pos_stack[depth] = 0

    counters.num_enumerations = enum
