"""Embedding verification utilities.

Independent re-checking of matcher output against Def. II.1: an embedding
must be injective, label-preserving and edge-preserving.  Used by tests
and available to downstream users who want to validate results from any
engine configuration.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.graphs.graph import Graph

__all__ = ["is_valid_embedding", "explain_embedding", "verify_all"]


def is_valid_embedding(
    query: Graph, data: Graph, mapping: Sequence[int] | Mapping[int, int]
) -> bool:
    """Whether ``mapping`` (query vertex -> data vertex) is a monomorphism."""
    return explain_embedding(query, data, mapping) is None


def explain_embedding(
    query: Graph, data: Graph, mapping: Sequence[int] | Mapping[int, int]
) -> str | None:
    """``None`` for a valid embedding, else a human-readable violation.

    Checks, in order: arity, image range, injectivity (Def. II.1's
    injective function), label preservation (condition 1) and edge
    preservation (condition 2).
    """
    if isinstance(mapping, Mapping):
        if sorted(mapping) != list(range(query.num_vertices)):
            return "mapping does not cover all query vertices"
        images = [int(mapping[u]) for u in range(query.num_vertices)]
    else:
        images = [int(v) for v in mapping]
        if len(images) != query.num_vertices:
            return (
                f"mapping has {len(images)} entries for "
                f"{query.num_vertices} query vertices"
            )

    for u, v in enumerate(images):
        if not 0 <= v < data.num_vertices:
            return f"image {v} of query vertex {u} is out of range"
    if len(set(images)) != len(images):
        return "mapping is not injective"
    for u, v in enumerate(images):
        if query.label(u) != data.label(v):
            return (
                f"label mismatch at query vertex {u}: "
                f"{query.label(u)} != {data.label(v)}"
            )
    for u, w in query.edges():
        if not data.has_edge(images[u], images[w]):
            return f"query edge ({u}, {w}) has no image edge"
    return None


def verify_all(
    query: Graph, data: Graph, matches: Sequence[Sequence[int]]
) -> list[str]:
    """Violations across a batch of matches (empty list = all valid)."""
    problems = []
    for index, match in enumerate(matches):
        reason = explain_embedding(query, data, match)
        if reason is not None:
            problems.append(f"match {index}: {reason}")
    return problems
