"""End-to-end matching engine composing the three phases (Algorithm 1).

:class:`MatchingEngine` wires a candidate filter, an orderer and an
enumerator, timing each phase separately so the benchmarks can report the
paper's decomposition ``t = t_filter + t_order + t_enum`` (Sec. IV-B).

Phase (1) produces a :class:`~repro.matching.context.MatchingContext`:
the candidate sets *and* the per-edge :class:`CandidateSpace` index are
built exactly once per run — the index inside the filtering phase, so
its cost is billed to ``filter_time`` like every other Phase (1)
artifact — and shared by the orderer and the enumerator.

The Hybrid baseline of the paper is ``MatchingEngine(GQLFilter(),
RIOrderer(), ...)``; RL-QVO swaps only the orderer, exactly as Sec. III-B
prescribes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.candidates import CandidateFilter, CandidateSets
from repro.matching.context import MatchingContext
from repro.matching.enumeration import EnumerationResult, Enumerator
from repro.matching.ordering.base import Orderer

__all__ = ["MatchResult", "MatchingEngine"]


@dataclass(frozen=True)
class MatchResult:
    """Result of one full matching run with per-phase timings.

    ``shards`` is populated only by sharded executions: one
    :class:`~repro.matching.sharded.ShardOutcome` per enumerated shard,
    with ``merge_time`` the cost of remapping local ids and merging the
    per-shard sequences into the canonical global one.
    """

    order: tuple[int, ...]
    enumeration: EnumerationResult
    filter_time: float
    order_time: float
    shards: tuple | None = None
    merge_time: float = 0.0

    @property
    def enum_time(self) -> float:
        """Enumeration phase wall-clock seconds."""
        return self.enumeration.elapsed

    @property
    def total_time(self) -> float:
        """``t_filter + t_order + t_enum`` (Sec. IV-B)."""
        return self.filter_time + self.order_time + self.enum_time

    @property
    def num_matches(self) -> int:
        """Embeddings found."""
        return self.enumeration.num_matches

    @property
    def num_enumerations(self) -> int:
        """``#enum`` of the run."""
        return self.enumeration.num_enumerations

    @property
    def solved(self) -> bool:
        """Whether the run finished without hitting the deadline."""
        return not self.enumeration.timed_out


class MatchingEngine:
    """Composable filtering → ordering → enumeration pipeline."""

    def __init__(
        self,
        candidate_filter: CandidateFilter,
        orderer: Orderer,
        enumerator: Enumerator | None = None,
    ):
        self.candidate_filter = candidate_filter
        self.orderer = orderer
        self.enumerator = enumerator if enumerator is not None else Enumerator()

    def run(
        self,
        query: Graph,
        data: Graph,
        stats: GraphStats | None = None,
        rng: np.random.Generator | None = None,
    ) -> MatchResult:
        """Execute the full pipeline on one query."""
        t0 = time.perf_counter()
        candidates = self.candidate_filter.filter(query, data, stats)
        if candidates.has_empty():
            # No embedding can exist: skip the ordering phase entirely
            # (nothing to bill it for) and report an instant enumeration.
            # The identity order stands in for the never-computed φ.
            t1 = time.perf_counter()
            empty = EnumerationResult(0, 0, 0.0, False, False, ())
            return MatchResult(tuple(range(query.num_vertices)), empty, t1 - t0, 0.0)

        context = MatchingContext(query, data, candidates, stats)
        if self.enumerator.needs_space:
            # Phase (1) artifact: built once here, billed to filter_time,
            # then shared by the orderer and the enumerator.
            context.ensure_space()
        t1 = time.perf_counter()

        order = self.orderer.order_context(context, rng)
        t2 = time.perf_counter()
        enumeration = self.enumerator.run_context(context, order)
        return MatchResult(tuple(order), enumeration, t1 - t0, t2 - t1)

    def candidates_only(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        """Run just the filtering phase (used by trainers and benches)."""
        return self.candidate_filter.filter(query, data, stats)
