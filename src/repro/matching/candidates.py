"""Candidate vertex sets (Def. II.2) and the filter interface.

Phase (1) of the generic backtracking framework (Algorithm 1) produces a
*complete* candidate set ``C(u)`` for every query vertex: any data vertex
participating in some embedding must survive filtering.  Filters here only
ever *shrink* candidate sets, so completeness is preserved by construction
as long as the base rule (label match + degree) is complete — which it is
for subgraph isomorphism.

The canonical representation of each ``C(u)`` is a sorted, duplicate-free
int64 array — the form every CSR-flat consumer (:class:`CandidateSpace`,
the iterative enumerator, the vectorized filters) works on directly.  The
frozenset views used by set-based call sites are derived lazily, one
query vertex at a time, so array-only pipelines never build them.
"""

from __future__ import annotations

import abc
import sys
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats

__all__ = ["CandidateSets", "CandidateFilter"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


class CandidateSets:
    """Per-query-vertex candidate sets ``C(u)``.

    Canonically stores each ``C(u)`` as a sorted int64 array; the
    frozenset view (membership tests in the recursive engine) is
    materialized lazily per vertex.
    """

    __slots__ = ("_arrays", "_sets")

    def __init__(self, sets: Sequence[Iterable[int]]):
        self._arrays: list[np.ndarray] = []
        for s in sets:
            if isinstance(s, np.ndarray):
                arr = np.unique(np.asarray(s, dtype=np.int64))
            else:
                arr = np.unique(np.fromiter((int(v) for v in s), dtype=np.int64))
            arr.setflags(write=False)
            self._arrays.append(arr)
        self._sets: list[frozenset[int] | None] = [None] * len(self._arrays)

    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray]) -> "CandidateSets":
        """Trusted fast path: wrap sorted, duplicate-free int64 arrays.

        The vectorized filters produce candidates as masked slices of the
        data graph's label index, which are sorted and unique already —
        no per-element Python round trip is needed.  Int64 inputs are
        wrapped (not copied) and frozen read-only in place; pass copies
        if the caller needs to keep mutating them.
        """
        self = cls.__new__(cls)
        self._arrays = []
        for arr in arrays:
            arr = np.asarray(arr, dtype=np.int64)
            arr.setflags(write=False)
            self._arrays.append(arr)
        self._sets = [None] * len(self._arrays)
        return self

    @property
    def num_query_vertices(self) -> int:
        """Number of query vertices covered."""
        return len(self._arrays)

    def get(self, u: int) -> frozenset[int]:
        """Candidate set ``C(u)`` as a frozenset (materialized lazily)."""
        s = self._sets[u]
        if s is None:
            s = self._sets[u] = frozenset(self._arrays[u].tolist())
        return s

    def array(self, u: int) -> np.ndarray:
        """Candidate set ``C(u)`` as a sorted array."""
        return self._arrays[u]

    def size(self, u: int) -> int:
        """``|C(u)|``."""
        return int(self._arrays[u].size)

    def sizes(self) -> list[int]:
        """All candidate set sizes indexed by query vertex."""
        return [int(arr.size) for arr in self._arrays]

    def total_size(self) -> int:
        """Sum of all candidate set sizes."""
        return sum(int(arr.size) for arr in self._arrays)

    def has_empty(self) -> bool:
        """Whether any ``C(u)`` is empty (query has no match)."""
        return any(arr.size == 0 for arr in self._arrays)

    def contains(self, u: int, v: int) -> bool:
        """Whether data vertex ``v`` is in ``C(u)``."""
        arr = self._arrays[u]
        i = int(np.searchsorted(arr, v))
        return i < arr.size and int(arr[i]) == v

    def restricted(self, u: int, keep: Iterable[int]) -> "CandidateSets":
        """A copy with ``C(u)`` intersected with ``keep`` (others unchanged).

        Untouched columns are shared by reference — only column ``u`` is
        recomputed, so restricting one vertex of a large candidate
        structure is O(|C(u)| + |keep|), not a full rebuild.
        """
        if isinstance(keep, np.ndarray):
            keep_arr = np.unique(np.asarray(keep, dtype=np.int64))
        else:
            keep_arr = np.unique(np.fromiter((int(v) for v in keep), dtype=np.int64))
        new_col = np.intersect1d(self._arrays[u], keep_arr, assume_unique=True)
        new_col.setflags(write=False)
        clone = CandidateSets.__new__(CandidateSets)
        clone._arrays = list(self._arrays)
        clone._sets = list(self._sets)
        clone._arrays[u] = new_col
        clone._sets[u] = None
        return clone

    def memory_bytes(self) -> int:
        """Array footprint plus any lazily materialized frozenset views."""
        total = sum(arr.nbytes for arr in self._arrays)
        total += sum(sys.getsizeof(s) for s in self._sets if s is not None)
        return total

    def __iter__(self) -> Iterator[frozenset[int]]:
        return (self.get(u) for u in range(len(self._arrays)))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CandidateSets(sizes={self.sizes()})"


class CandidateFilter(abc.ABC):
    """Interface for Phase (1) candidate generation strategies."""

    #: Short identifier used in benchmark tables.
    name: str = "base"

    @abc.abstractmethod
    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        """Compute complete candidate sets for ``query`` against ``data``."""

    def _require_stats(self, data: Graph, stats: GraphStats | None) -> GraphStats:
        if stats is None:
            return GraphStats(data)
        if stats.graph is not data:
            raise FilterError("GraphStats instance does not belong to this data graph")
        return stats
