"""Candidate vertex sets (Def. II.2) and the filter interface.

Phase (1) of the generic backtracking framework (Algorithm 1) produces a
*complete* candidate set ``C(u)`` for every query vertex: any data vertex
participating in some embedding must survive filtering.  Filters here only
ever *shrink* candidate sets, so completeness is preserved by construction
as long as the base rule (label match + degree) is complete — which it is
for subgraph isomorphism.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import FilterError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats

__all__ = ["CandidateSets", "CandidateFilter"]


class CandidateSets:
    """Per-query-vertex candidate sets ``C(u)``.

    Stores each ``C(u)`` both as a frozenset (membership tests in the
    enumeration hot loop) and as a sorted array (deterministic iteration).
    """

    __slots__ = ("_sets", "_arrays")

    def __init__(self, sets: Sequence[Iterable[int]]):
        self._sets: list[frozenset[int]] = [frozenset(int(v) for v in s) for s in sets]
        self._arrays: list[np.ndarray] = []
        for s in self._sets:
            arr = np.fromiter(s, dtype=np.int64, count=len(s))
            arr.sort()
            arr.setflags(write=False)
            self._arrays.append(arr)

    @property
    def num_query_vertices(self) -> int:
        """Number of query vertices covered."""
        return len(self._sets)

    def get(self, u: int) -> frozenset[int]:
        """Candidate set ``C(u)`` as a frozenset."""
        return self._sets[u]

    def array(self, u: int) -> np.ndarray:
        """Candidate set ``C(u)`` as a sorted array."""
        return self._arrays[u]

    def size(self, u: int) -> int:
        """``|C(u)|``."""
        return len(self._sets[u])

    def sizes(self) -> list[int]:
        """All candidate set sizes indexed by query vertex."""
        return [len(s) for s in self._sets]

    def total_size(self) -> int:
        """Sum of all candidate set sizes."""
        return sum(len(s) for s in self._sets)

    def has_empty(self) -> bool:
        """Whether any ``C(u)`` is empty (query has no match)."""
        return any(not s for s in self._sets)

    def contains(self, u: int, v: int) -> bool:
        """Whether data vertex ``v`` is in ``C(u)``."""
        return v in self._sets[u]

    def restricted(self, u: int, keep: Iterable[int]) -> "CandidateSets":
        """A copy with ``C(u)`` intersected with ``keep`` (others unchanged)."""
        new_sets = list(self._sets)
        new_sets[u] = self._sets[u] & frozenset(keep)
        return CandidateSets(new_sets)

    def __iter__(self):
        return iter(self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CandidateSets(sizes={self.sizes()})"


class CandidateFilter(abc.ABC):
    """Interface for Phase (1) candidate generation strategies."""

    #: Short identifier used in benchmark tables.
    name: str = "base"

    @abc.abstractmethod
    def filter(
        self, query: Graph, data: Graph, stats: GraphStats | None = None
    ) -> CandidateSets:
        """Compute complete candidate sets for ``query`` against ``data``."""

    def _require_stats(self, data: Graph, stats: GraphStats | None) -> GraphStats:
        if stats is None:
            return GraphStats(data)
        if stats.graph is not data:
            raise FilterError("GraphStats instance does not belong to this data graph")
        return stats
