"""Trajectory collection for PPO (the sampling policy π_θ').

One :class:`Trajectory` records everything PPO needs to recompute action
probabilities under the *current* policy: the per-step feature matrices,
action masks, chosen actions and the sampling policy's probabilities.
Validity flags and entropies (step-wise reward inputs) are captured at
collection time from the sampling policy's outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.nn.gnn import GraphContext
from repro.nn.tensor import no_grad
from repro.rl.env import OrderingEnv

__all__ = ["TrajectoryStep", "Trajectory", "collect_trajectory"]


@dataclass(frozen=True)
class TrajectoryStep:
    """One decision point of an ordering episode."""

    features: np.ndarray
    action_mask: np.ndarray
    action: int
    old_prob: float
    entropy: float
    valid: bool
    #: Whether the policy was actually consulted (False for forced moves
    #: where the action space was a singleton — no gradient flows there).
    computed: bool


@dataclass
class Trajectory:
    """A full ordering episode for one query graph."""

    query: Graph
    ctx: GraphContext
    steps: list[TrajectoryStep] = field(default_factory=list)
    order: list[int] = field(default_factory=list)
    #: Filled by the trainer once the enumeration reward is known.
    rewards: list[float] = field(default_factory=list)

    def policy_steps(self) -> list[tuple[int, TrajectoryStep]]:
        """(episode-step index, step) pairs where the policy acted."""
        return [(i, s) for i, s in enumerate(self.steps) if s.computed]


def collect_trajectory(
    policy,
    query: Graph,
    feature_builder,
    rng: np.random.Generator,
    ctx: GraphContext | None = None,
    greedy: bool = False,
) -> Trajectory:
    """Roll the policy through one ordering episode.

    ``policy`` is duck-typed (``forward(features, ctx, mask) ->
    PolicyOutput``); singleton action spaces are taken without a forward
    pass, as the paper prescribes (Sec. III-D, "directly selects the only
    candidate").
    """
    ctx = ctx if ctx is not None else GraphContext.from_graph(query)
    env = OrderingEnv(query)
    state = env.reset()
    static = feature_builder.static_features(query)
    trajectory = Trajectory(query=query, ctx=ctx)

    while not env.done:
        features = feature_builder.step_features(
            query, static, state.step, state.ordered_mask
        )
        actions = state.action_space
        if actions.size == 1:
            action = int(actions[0])
            step = TrajectoryStep(
                features=features,
                action_mask=state.action_mask,
                action=action,
                old_prob=1.0,
                entropy=0.0,
                valid=True,
                computed=False,
            )
        else:
            with no_grad():
                out = policy.forward(features, ctx, state.action_mask)
            p = out.probs.data
            if greedy:
                action = int(np.argmax(p))
            else:
                action = int(rng.choice(p.size, p=p / p.sum()))
            step = TrajectoryStep(
                features=features,
                action_mask=state.action_mask,
                action=action,
                old_prob=float(p[action]),
                entropy=float(out.entropy.data),
                valid=out.is_valid,
                computed=True,
            )
        trajectory.steps.append(step)
        trajectory.order.append(step.action)
        state = env.step(step.action)
    return trajectory
