"""The query-vertex-ordering MDP (Sec. III-C).

State at step ``t``: the partial order ``φ_t`` plus the query feature
matrix ``H_t`` (whose last two columns — remaining-count and ordered
indicator — change per step).  Action space: neighbours of the ordered
vertices not yet ordered, ``N(φ_t)``; at ``t = 0`` every vertex is
available.  The episode ends when ``φ`` is a full permutation.

The environment is reward-free: the dominant reward term (Δ#enum against
the RI baseline) is only computable after the full order is known, so the
trainer attaches rewards post-episode (see :mod:`repro.rl.reward`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.graphs.graph import Graph

__all__ = ["OrderingState", "OrderingEnv"]


class OrderingState:
    """Immutable snapshot of the MDP state exposed to the policy."""

    __slots__ = ("step", "order", "ordered_mask", "action_mask")

    def __init__(
        self,
        step: int,
        order: tuple[int, ...],
        ordered_mask: np.ndarray,
        action_mask: np.ndarray,
    ):
        self.step = step
        self.order = order
        self.ordered_mask = ordered_mask
        self.action_mask = action_mask

    @property
    def action_space(self) -> np.ndarray:
        """Vertex ids currently selectable."""
        return np.flatnonzero(self.action_mask)


class OrderingEnv:
    """MDP over matching-order prefixes of one query graph."""

    def __init__(self, query: Graph):
        self.query = query
        self._order: list[int] = []
        self._ordered_mask = np.zeros(query.num_vertices, dtype=bool)
        self._action_mask = np.ones(query.num_vertices, dtype=bool)
        self._done = query.num_vertices == 0

    def reset(self) -> OrderingState:
        """Restart the episode; initially every vertex is selectable."""
        n = self.query.num_vertices
        self._order = []
        self._ordered_mask = np.zeros(n, dtype=bool)
        self._action_mask = np.ones(n, dtype=bool)
        self._done = n == 0
        return self.state()

    def state(self) -> OrderingState:
        """Current state snapshot."""
        return OrderingState(
            step=len(self._order),
            order=tuple(self._order),
            ordered_mask=self._ordered_mask.copy(),
            action_mask=self._action_mask.copy(),
        )

    @property
    def done(self) -> bool:
        """Whether the full order has been generated."""
        return self._done

    @property
    def order(self) -> list[int]:
        """The order built so far."""
        return list(self._order)

    def step(self, action: int) -> OrderingState:
        """Add ``action`` to the order; update masks (action-space update).

        Raises
        ------
        TrainingError
            If the episode is over or ``action`` is outside the action
            space (the policy layer masks invalid vertices, so reaching
            this is a programming error, not a learning failure).
        """
        if self._done:
            raise TrainingError("step() on a finished episode")
        action = int(action)
        if not self._action_mask[action]:
            raise TrainingError(f"vertex {action} is not in the action space")

        self._order.append(action)
        self._ordered_mask[action] = True

        n = self.query.num_vertices
        if len(self._order) == n:
            self._done = True
            self._action_mask = np.zeros(n, dtype=bool)
        else:
            mask = np.zeros(n, dtype=bool)
            for u in self._order:
                for v in self.query.neighbors(u):
                    v = int(v)
                    if not self._ordered_mask[v]:
                        mask[v] = True
            if not mask.any():
                # Disconnected query: fall back to all unordered vertices so
                # the episode can always finish.
                mask = ~self._ordered_mask
            self._action_mask = mask
        return self.state()
