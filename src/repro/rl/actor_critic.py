"""Actor–critic trainer — the value-function family the paper rejected.

Sec. III-A: "the enumeration numbers for the query vary vastly with
different matching orders.  Therefore, the methods [that] use value
function, such as Q-learning and actor-critics, are hard to converge."
This module implements a standard advantage actor–critic so that claim is
checkable: a value head (linear on the mean-pooled encoder embedding)
predicts the decayed return, the actor ascends
``Σ_t (R_t − V(s_t)) · log π(a_t|s_t)`` and the critic descends the MSE.

The critic shares the policy's encoder; its head parameters live in this
trainer so the saved policy stays architecture-compatible with PPO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.rollout import Trajectory

__all__ = ["ActorCriticStats", "ActorCriticTrainer"]


@dataclass(frozen=True)
class ActorCriticStats:
    """Diagnostics of one actor–critic update."""

    loss: float
    actor_loss: float
    critic_loss: float
    mean_value: float
    num_steps: int


class ActorCriticTrainer:
    """Advantage actor–critic over ordering trajectories.

    API-compatible with :class:`~repro.rl.ppo.PPOTrainer`
    (``update(trajectories)`` with per-step decayed rewards attached).
    """

    def __init__(
        self,
        policy,
        learning_rate: float = 1e-3,
        critic_coefficient: float = 0.5,
        updates_per_batch: int = 1,
        max_grad_norm: float | None = 5.0,
    ):
        if updates_per_batch < 1:
            raise TrainingError("updates_per_batch must be >= 1")
        self.policy = policy
        self.critic_coefficient = critic_coefficient
        self.updates_per_batch = updates_per_batch
        self.max_grad_norm = max_grad_norm
        hidden = policy.config.hidden_dim
        self.value_head = Linear(
            hidden, 1, rng=np.random.default_rng(policy.config.seed + 17)
        )
        params = list(policy.parameters()) + list(self.value_head.parameters())
        self.optimizer = Adam(params, lr=learning_rate)

    def _value(self, features: np.ndarray, ctx) -> Tensor:
        """Critic estimate: linear head on the mean-pooled embedding."""
        h = self.policy.encode(features, ctx)
        pooled = h.mean(axis=0, keepdims=True)  # (1, hidden)
        return self.value_head(pooled).reshape(1)

    def update(self, trajectories: list[Trajectory]) -> ActorCriticStats:
        """Run ``updates_per_batch`` actor–critic steps on the batch."""
        last = ActorCriticStats(0.0, 0.0, 0.0, 0.0, 0)
        for _ in range(self.updates_per_batch):
            last = self._one_pass(trajectories)
        return last

    def _one_pass(self, trajectories: list[Trajectory]) -> ActorCriticStats:
        actor_terms: list[Tensor] = []
        critic_terms: list[Tensor] = []
        values: list[float] = []

        for trajectory in trajectories:
            if len(trajectory.rewards) != len(trajectory.steps):
                raise TrainingError(
                    "trajectory rewards not attached (trainer must set them)"
                )
            for t, step in trajectory.policy_steps():
                out = self.policy.forward(
                    step.features, trajectory.ctx, step.action_mask
                )
                value = self._value(step.features, trajectory.ctx)
                reward = trajectory.rewards[t]
                advantage = reward - float(value.data[0])  # detached for actor
                logp = (
                    out.probs.index_select([step.action]).maximum(1e-12).log()
                )
                actor_terms.append(logp * advantage)
                diff = value - reward
                critic_terms.append(diff * diff)
                values.append(float(value.data[0]))

        if not actor_terms:
            return ActorCriticStats(0.0, 0.0, 0.0, 0.0, 0)

        def total(terms: list[Tensor]) -> Tensor:
            acc = terms[0].reshape(1)
            for term in terms[1:]:
                acc = acc + term.reshape(1)
            return acc.sum() * (1.0 / len(terms))

        actor_loss = -total(actor_terms)
        critic_loss = total(critic_terms)
        loss = actor_loss + critic_loss * self.critic_coefficient

        self.optimizer.zero_grad()
        loss.backward()
        if self.max_grad_norm is not None:
            self._clip_gradients()
        self.optimizer.step()
        return ActorCriticStats(
            loss=float(loss.data),
            actor_loss=float(actor_loss.data),
            critic_loss=float(critic_loss.data),
            mean_value=float(np.mean(values)),
            num_steps=len(actor_terms),
        )

    def _clip_gradients(self) -> None:
        total = 0.0
        for p in self.optimizer.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = total**0.5
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.optimizer.parameters:
                if p.grad is not None:
                    p.grad *= scale
