"""Reward design of RL-QVO (Sec. III-C, Eq. 1–2).

Three components:

* ``r_enum`` — shared across all steps of an episode: a squashed version
  of the enumeration-count reduction against the baseline order
  (``φ_base = φ_RI``).  The paper defines ``Δ#enum`` and applies a
  gap-squashing ``f_enum`` "such as logarithm"; we use the sign-preserving
  ``sign(#enum_base − #enum_learned) · log1p(|Δ|)`` so that *fewer*
  enumerations than RI is positive reward.
* ``r_val,t`` — step-wise: small positive if the *unmasked* argmax of the
  policy scores lies in the action space, a larger negative otherwise.
* ``r_h,t`` — step-wise entropy of the masked action distribution,
  encouraging exploration.

Eq. 1 combines them with coefficients ``β_val`` and ``β_h``; Eq. 2 sums
``γ^t R_t`` so early (more important) ordering decisions weigh more.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "RewardConfig",
    "enumeration_reward",
    "validity_reward",
    "step_rewards",
    "discounted_return",
]


@dataclass(frozen=True)
class RewardConfig:
    """Coefficients of Eq. 1–2.

    Attributes
    ----------
    beta_val / beta_h:
        Coefficients of the validity and entropy rewards.
    gamma:
        Decay factor in (0, 1) weighting early steps higher (Eq. 2).
    valid_bonus / invalid_penalty:
        Step-wise validity reward values; the penalty exceeds the bonus in
        absolute value as required by Sec. III-C.
    fenum:
        Gap-squashing function for Δ#enum: ``"log"`` (default —
        ``sign(Δ)·log1p(|Δ|)``, absolute gaps, complex queries dominate),
        ``"log_ratio"`` (``log(#enum_base / #enum_learned)``,
        scale-invariant) or ``"linear"`` (raw Δ, ablation).
    """

    beta_val: float = 0.5
    beta_h: float = 0.1
    gamma: float = 0.95
    valid_bonus: float = 0.1
    invalid_penalty: float = -0.2
    fenum: str = "log"

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {self.gamma}")
        if abs(self.invalid_penalty) <= abs(self.valid_bonus):
            raise ValueError(
                "invalid_penalty must exceed valid_bonus in absolute value"
            )
        if self.fenum not in ("log", "log_ratio", "linear"):
            raise ValueError(f"unknown fenum {self.fenum!r}")


def enumeration_reward(
    enum_learned: int, enum_baseline: int, fenum: str = "log"
) -> float:
    """``r_enum`` — squashed enumeration reduction vs the baseline order."""
    delta = enum_baseline - enum_learned
    if fenum == "linear":
        return float(delta)
    if fenum == "log_ratio":
        return math.log(max(enum_baseline, 1) / max(enum_learned, 1))
    return math.copysign(math.log1p(abs(delta)), delta) if delta else 0.0


def validity_reward(is_valid: bool, config: RewardConfig) -> float:
    """``r_val,t`` — bonus for a valid unmasked argmax, penalty otherwise."""
    return config.valid_bonus if is_valid else config.invalid_penalty


def step_rewards(
    renum: float,
    validities: Sequence[bool],
    entropies: Sequence[float],
    config: RewardConfig,
) -> list[float]:
    """Per-step ``R_t`` (Eq. 1); ``r_enum`` is shared across all steps."""
    if len(validities) != len(entropies):
        raise ValueError("validities and entropies must align")
    return [
        renum
        + config.beta_val * validity_reward(valid, config)
        + config.beta_h * float(ent)
        for valid, ent in zip(validities, entropies)
    ]


def discounted_return(rewards: Sequence[float], gamma: float) -> float:
    """Eq. 2: ``R_q = Σ_t γ^t R_t`` (t starting at 1)."""
    return sum(gamma**t * r for t, r in enumerate(rewards, start=1))
