"""Proximal Policy Optimization for the ordering policy (Sec. III-E).

The clipped surrogate of Eq. 6–7: with the frozen sampling policy
``π_θ'`` (previous epoch) providing action probabilities at collection
time, each update maximizes::

    J(θ) = Σ_t Σ_(a_t, s_t) min( ρ_t · r_t,  clip(ρ_t, 1−ε, 1+ε) · r_t )

where ``ρ_t = π_θ(a_t|s_t) / π_θ'(a_t|s_t)`` and ``r_t`` is the step's
decayed reward ``γ^t R_t`` (Eq. 1–2, summed over the training batch per
Eq. 5).  We run gradient *ascent* by minimizing ``−J`` with Adam.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.rollout import Trajectory

__all__ = ["PPOStats", "PPOTrainer"]


@dataclass(frozen=True)
class PPOStats:
    """Diagnostics of one PPO update call."""

    loss: float
    mean_ratio: float
    clip_fraction: float
    num_steps: int


class PPOTrainer:
    """Clipped-surrogate PPO updates over collected trajectories."""

    def __init__(
        self,
        policy,
        learning_rate: float = 1e-3,
        clip_epsilon: float = 0.2,
        updates_per_batch: int = 2,
        max_grad_norm: float | None = 5.0,
        normalize_advantages: bool = False,
    ):
        if not 0.0 < clip_epsilon < 1.0:
            raise TrainingError("clip_epsilon must be in (0, 1)")
        if updates_per_batch < 1:
            raise TrainingError("updates_per_batch must be >= 1")
        self.policy = policy
        self.clip_epsilon = clip_epsilon
        self.updates_per_batch = updates_per_batch
        self.max_grad_norm = max_grad_norm
        #: Standard PPO variance reduction: center/scale the per-step
        #: decayed rewards across the batch before they enter the
        #: surrogate.  The paper uses the raw rewards (Eq. 6); disable to
        #: match it exactly.
        self.normalize_advantages = normalize_advantages
        self.optimizer = Adam(policy.parameters(), lr=learning_rate)

    def update(self, trajectories: list[Trajectory]) -> PPOStats:
        """Run ``updates_per_batch`` gradient steps on the batch."""
        last = PPOStats(0.0, 1.0, 0.0, 0)
        for _ in range(self.updates_per_batch):
            last = self._one_pass(trajectories)
        return last

    def _advantages(self, trajectories: list[Trajectory]) -> dict[int, list[float]]:
        """Per-trajectory step advantages, optionally batch-normalized."""
        raw: list[float] = []
        for trajectory in trajectories:
            if len(trajectory.rewards) != len(trajectory.steps):
                raise TrainingError(
                    "trajectory rewards not attached (trainer must set them)"
                )
            raw.extend(trajectory.rewards[t] for t, _ in trajectory.policy_steps())
        if not raw:
            return {}
        if self.normalize_advantages and len(raw) > 1:
            mean = float(np.mean(raw))
            std = float(np.std(raw))
            scale = 1.0 / (std + 1e-8) if std > 1e-8 else 1.0
        else:
            mean, scale = 0.0, 1.0
        out: dict[int, list[float]] = {}
        for trajectory in trajectories:
            out[id(trajectory)] = [
                (trajectory.rewards[t] - mean) * scale
                for t, _ in trajectory.policy_steps()
            ]
        return out

    def _one_pass(self, trajectories: list[Trajectory]) -> PPOStats:
        terms: list[Tensor] = []
        ratios: list[float] = []
        clipped = 0
        low, high = 1.0 - self.clip_epsilon, 1.0 + self.clip_epsilon
        advantages = self._advantages(trajectories)

        for trajectory in trajectories:
            for k, (t, step) in enumerate(trajectory.policy_steps()):
                out = self.policy.forward(
                    step.features, trajectory.ctx, step.action_mask
                )
                prob = out.probs.index_select([step.action])
                ratio = prob * (1.0 / max(step.old_prob, 1e-12))
                reward = advantages[id(trajectory)][k]
                surrogate = (ratio * reward).minimum(
                    ratio.clip(low, high) * reward
                )
                terms.append(surrogate)
                r = float(ratio.data.reshape(-1)[0])
                ratios.append(r)
                if r < low or r > high:
                    clipped += 1

        if not terms:
            return PPOStats(0.0, 1.0, 0.0, 0)

        total = terms[0].reshape(1)
        for term in terms[1:]:
            total = total + term.reshape(1)
        # Normalize by step count so the learning rate is insensitive to
        # batch size; ascent on J == descent on -J.
        loss = -(total.sum() * (1.0 / len(terms)))

        self.optimizer.zero_grad()
        loss.backward()
        if self.max_grad_norm is not None:
            self._clip_gradients()
        self.optimizer.step()

        return PPOStats(
            loss=float(loss.data),
            mean_ratio=float(np.mean(ratios)),
            clip_fraction=clipped / len(terms),
            num_steps=len(terms),
        )

    def _clip_gradients(self) -> None:
        """Global-norm gradient clipping for training stability."""
        total = 0.0
        for p in self.optimizer.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = total**0.5
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.optimizer.parameters:
                if p.grad is not None:
                    p.grad *= scale
