"""Plain REINFORCE trainer — the non-PPO alternative of Sec. III-H.

The paper's discussion notes PPO "outperforms other reinforcement
learning training methods, such as actor-critic and Q-learning in this
work", and that other RL frameworks could trade training overhead for
quality.  This module provides vanilla REINFORCE (likelihood-ratio policy
gradient, no clipping, no frozen sampling policy) as the comparison
point: it maximizes ``Σ_t w_t · log π_θ(a_t|s_t)`` with the same decayed
rewards ``w_t = γ^t R_t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.rollout import Trajectory

__all__ = ["ReinforceStats", "ReinforceTrainer"]


@dataclass(frozen=True)
class ReinforceStats:
    """Diagnostics of one REINFORCE update."""

    loss: float
    mean_logprob: float
    num_steps: int


class ReinforceTrainer:
    """Vanilla policy-gradient updates over collected trajectories.

    API-compatible with :class:`~repro.rl.ppo.PPOTrainer` so it can be
    swapped into :class:`~repro.core.trainer.RLQVOTrainer` for the
    algorithm ablation (``RLQVOConfig(algorithm="reinforce")``).
    """

    def __init__(
        self,
        policy,
        learning_rate: float = 1e-3,
        updates_per_batch: int = 1,
        max_grad_norm: float | None = 5.0,
        normalize_advantages: bool = False,
    ):
        if updates_per_batch < 1:
            raise TrainingError("updates_per_batch must be >= 1")
        self.policy = policy
        self.updates_per_batch = updates_per_batch
        self.max_grad_norm = max_grad_norm
        self.normalize_advantages = normalize_advantages
        self.optimizer = Adam(policy.parameters(), lr=learning_rate)

    def update(self, trajectories: list[Trajectory]) -> ReinforceStats:
        """One (or more) REINFORCE gradient steps on the batch.

        Unlike PPO, re-running multiple passes on the same on-policy batch
        is biased; the default is a single pass.
        """
        last = ReinforceStats(0.0, 0.0, 0)
        for _ in range(self.updates_per_batch):
            last = self._one_pass(trajectories)
        return last

    def _one_pass(self, trajectories: list[Trajectory]) -> ReinforceStats:
        weights: list[float] = []
        for trajectory in trajectories:
            if len(trajectory.rewards) != len(trajectory.steps):
                raise TrainingError(
                    "trajectory rewards not attached (trainer must set them)"
                )
            weights.extend(
                trajectory.rewards[t] for t, _ in trajectory.policy_steps()
            )
        if not weights:
            return ReinforceStats(0.0, 0.0, 0)
        if self.normalize_advantages and len(weights) > 1:
            mean, std = float(np.mean(weights)), float(np.std(weights))
            weights = [(w - mean) / (std + 1e-8) for w in weights]

        terms: list[Tensor] = []
        logprobs: list[float] = []
        cursor = 0
        for trajectory in trajectories:
            for t, step in trajectory.policy_steps():
                out = self.policy.forward(
                    step.features, trajectory.ctx, step.action_mask
                )
                logp = out.probs.index_select([step.action]).maximum(1e-12).log()
                terms.append(logp * weights[cursor])
                logprobs.append(float(logp.data.reshape(-1)[0]))
                cursor += 1

        total = terms[0].reshape(1)
        for term in terms[1:]:
            total = total + term.reshape(1)
        loss = -(total.sum() * (1.0 / len(terms)))

        self.optimizer.zero_grad()
        loss.backward()
        if self.max_grad_norm is not None:
            self._clip_gradients()
        self.optimizer.step()
        return ReinforceStats(
            loss=float(loss.data),
            mean_logprob=float(np.mean(logprobs)),
            num_steps=len(terms),
        )

    def _clip_gradients(self) -> None:
        total = 0.0
        for p in self.optimizer.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = total**0.5
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.optimizer.parameters:
                if p.grad is not None:
                    p.grad *= scale
