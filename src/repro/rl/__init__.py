"""Reinforcement learning substrate: ordering MDP, rewards, rollouts, PPO."""

from repro.rl.actor_critic import ActorCriticStats, ActorCriticTrainer
from repro.rl.env import OrderingEnv, OrderingState
from repro.rl.ppo import PPOStats, PPOTrainer
from repro.rl.reinforce import ReinforceStats, ReinforceTrainer
from repro.rl.reward import (
    RewardConfig,
    discounted_return,
    enumeration_reward,
    step_rewards,
    validity_reward,
)
from repro.rl.rollout import Trajectory, TrajectoryStep, collect_trajectory

__all__ = [
    "ActorCriticStats",
    "ActorCriticTrainer",
    "OrderingEnv",
    "OrderingState",
    "PPOStats",
    "PPOTrainer",
    "ReinforceStats",
    "ReinforceTrainer",
    "RewardConfig",
    "Trajectory",
    "TrajectoryStep",
    "collect_trajectory",
    "discounted_return",
    "enumeration_reward",
    "step_rewards",
    "validity_reward",
]
