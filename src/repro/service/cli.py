"""Serving CLI: ``repro-serve <requests.jsonl> [options]``.

Executes a JSONL request file against the dataset catalog and emits one
JSONL response per request, in request order.  Each input line is a
:meth:`repro.service.requests.MatchRequest.to_dict` payload::

    {"dataset": "citeseer", "query": {"labels": [0, 1, 0],
     "edges": [[0, 1], [1, 2]]}, "match_limit": 1000, "tag": "q-17"}

Responses are :meth:`repro.service.requests.MatchResponse.to_dict`
payloads; failed requests carry an ``"error"`` field instead of
results.  A trailing stats snapshot goes to stderr (or stdout as JSON
with ``--stats``), so pipelines can split data from telemetry.

Examples
--------
::

    repro-serve requests.jsonl --output responses.jsonl
    repro-serve requests.jsonl --datasets citeseer,yeast --workers 8
    repro-serve requests.jsonl --stats > responses_and_stats.jsonl
    repro-serve requests.jsonl --plan-store plans.sqlite --stats-json stats.json

With ``--plan-store`` the plan cache persists to sqlite, so a repeat
run over the same (or isomorphic) queries starts warm — Phases
(1)–(2) are served from the store instead of re-planned.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.service.cache import DEFAULT_CACHE_BYTES
from repro.service.requests import MatchRequest
from repro.service.service import MatchService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Execute a JSONL match-request file against the dataset catalog.",
    )
    parser.add_argument(
        "requests", help="path to the JSONL request file ('-' for stdin)"
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write JSONL responses (default: stdout)",
    )
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated catalog restriction (default: full registry)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool width for concurrent execution",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES,
        help="plan-cache byte budget",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append a {'stats': ...} JSON line after the responses",
    )
    parser.add_argument(
        "--plan-store", default=None, metavar="PATH",
        help="sqlite file for the persistent plan tier: plans survive the "
        "process, so repeat runs start warm (created on demand)",
    )
    parser.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="also write the final stats snapshot to PATH as JSON",
    )
    return parser


def _read_requests(path: str) -> list[MatchRequest]:
    """Parse the JSONL request file (skipping blank lines)."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    requests = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(MatchRequest.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ReproError) as exc:
            raise ReproError(f"request line {lineno}: {exc}") from exc
    return requests


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit code 0 when every request was served, 1 when any response
    carries an error (the responses are still all emitted) or the
    request file is malformed.
    """
    args = _build_parser().parse_args(argv)
    try:
        requests = _read_requests(args.requests)
    except (OSError, ReproError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1

    datasets = (
        [name.strip() for name in args.datasets.split(",") if name.strip()]
        if args.datasets is not None
        else None
    )
    service = MatchService(
        catalog=datasets, cache_bytes=args.cache_bytes, max_workers=args.workers,
        plan_store=args.plan_store,
    )
    responses = service.submit_many(requests)

    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        for response in responses:
            out.write(json.dumps(response.to_dict(), sort_keys=True) + "\n")
        if args.stats:
            out.write(
                json.dumps({"stats": service.stats().to_dict()}, sort_keys=True)
                + "\n"
            )
    finally:
        if args.output:
            out.close()

    stats = service.stats()
    if args.stats_json is not None:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    failed = sum(1 for r in responses if not r.ok)
    print(
        f"repro-serve: {len(responses)} responses "
        f"({failed} failed), cache hit rate "
        f"{stats.cache.hit_rate:.0%}, p95 latency {stats.latency_p95_s * 1e3:.1f}ms",
        file=sys.stderr,
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
