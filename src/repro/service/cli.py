"""Serving CLI: ``repro-serve <requests.jsonl> [options]``.

Executes a JSONL request file against the dataset catalog and emits one
JSONL response per request, in request order.  Each input line is a
:meth:`repro.service.requests.MatchRequest.to_dict` payload::

    {"dataset": "citeseer", "query": {"labels": [0, 1, 0],
     "edges": [[0, 1], [1, 2]]}, "match_limit": 1000, "tag": "q-17"}

Responses are :meth:`repro.service.requests.MatchResponse.to_dict`
payloads; failed requests carry an ``"error"`` field instead of
results.  A trailing stats snapshot goes to stderr (or stdout as JSON
with ``--stats``), so pipelines can split data from telemetry.

Examples
--------
::

    repro-serve requests.jsonl --output responses.jsonl
    repro-serve requests.jsonl --datasets citeseer,yeast --workers 8
    repro-serve requests.jsonl --stats > responses_and_stats.jsonl
    repro-serve requests.jsonl --plan-store plans.sqlite --stats-json stats.json
    repro-serve requests.jsonl --scheduler --default-deadline 10 \
        --tenant-max-inflight 4

With ``--plan-store`` the plan cache persists to sqlite, so a repeat
run over the same (or isomorphic) queries starts warm — Phases
(1)–(2) are served from the store instead of re-planned.

With ``--scheduler`` the batch is admitted through the cost-aware
priority queue (:mod:`repro.service.scheduler`) instead of FIFO
fan-out: requests carrying ``tenant`` / ``priority`` / ``deadline_s``
fields are budgeted, ordered by (deadline, estimated plan cost) and
fail fast with the stable ``rejected`` / ``deadline_expired`` codes;
served results stay bit-identical to the direct path.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.service.cache import DEFAULT_CACHE_BYTES
from repro.service.requests import MatchRequest
from repro.service.scheduler import SchedulerConfig
from repro.service.service import MatchService

__all__ = ["add_scheduler_arguments", "main", "scheduler_config_from_args"]


def add_scheduler_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--scheduler`` flag family (serve + server CLIs)."""
    group = parser.add_argument_group(
        "scheduling",
        "cost-aware admission (repro.service.scheduler); all knobs are "
        "inert without --scheduler",
    )
    group.add_argument(
        "--scheduler", action="store_true",
        help="admit requests through the cost-aware priority queue "
        "(deadline-then-estimated-cost order, per-tenant budgets, 429-style "
        "backpressure) instead of FIFO fan-out",
    )
    group.add_argument(
        "--sched-workers", type=int, default=SchedulerConfig.workers,
        metavar="N", help="scheduler worker threads",
    )
    group.add_argument(
        "--scheduler-executor", choices=("thread", "process"),
        default=SchedulerConfig.executor, metavar="{thread,process}",
        help="execution tier behind the scheduler: 'thread' runs Phase (3) "
        "in-process (GIL-serialized), 'process' dispatches to the "
        "repro.procpool worker pool for CPU parallelism; results are "
        "bit-identical either way",
    )
    group.add_argument(
        "--process-workers", type=int, default=SchedulerConfig.process_workers,
        metavar="N",
        help="worker-process count for --scheduler-executor process",
    )
    group.add_argument(
        "--durable-queue", default=None, metavar="PATH",
        help="sqlite journal for admitted-but-unserved requests: entries "
        "survive a crash and are re-admitted (with attempts bumped) on the "
        "next start",
    )
    group.add_argument(
        "--queue-capacity", type=int, default=SchedulerConfig.queue_capacity,
        metavar="N",
        help="bounded admission-queue depth; past it requests are rejected",
    )
    group.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="queueing deadline for requests that carry none "
        "(default: wait indefinitely)",
    )
    group.add_argument(
        "--tenant-max-inflight", type=int, default=None, metavar="N",
        help="per-tenant cap on admitted-but-unfinished requests",
    )
    group.add_argument(
        "--tenant-cost-budget", type=float, default=None, metavar="COST",
        help="per-tenant cap on summed in-flight estimated plan cost",
    )
    group.add_argument(
        "--no-degrade", action="store_true",
        help="disable the one retry under tighter limits after a timeout",
    )
    group.add_argument(
        "--degrade-match-limit", type=int,
        default=SchedulerConfig.degrade_match_limit, metavar="N",
        help="match limit of the degraded retry envelope",
    )
    group.add_argument(
        "--degrade-time-limit", type=float, default=None, metavar="SECONDS",
        help="time limit of the degraded retry envelope",
    )
    group.add_argument(
        "--degrade-orderer", default=None, metavar="NAME",
        help="cheaper orderer for the degraded retry (registry name)",
    )


def scheduler_config_from_args(args) -> SchedulerConfig | None:
    """A :class:`SchedulerConfig` from parsed flags (``None`` without
    ``--scheduler``)."""
    if not args.scheduler:
        return None
    return SchedulerConfig(
        workers=args.sched_workers,
        executor=args.scheduler_executor,
        process_workers=args.process_workers,
        durable_path=args.durable_queue,
        queue_capacity=args.queue_capacity,
        default_deadline_s=args.default_deadline,
        tenant_max_inflight=args.tenant_max_inflight,
        tenant_cost_budget=args.tenant_cost_budget,
        retry_degrade=not args.no_degrade,
        degrade_match_limit=args.degrade_match_limit,
        degrade_time_limit=args.degrade_time_limit,
        degrade_orderer=args.degrade_orderer,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Execute a JSONL match-request file against the dataset catalog.",
    )
    parser.add_argument(
        "requests", help="path to the JSONL request file ('-' for stdin)"
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write JSONL responses (default: stdout)",
    )
    parser.add_argument(
        "--datasets", default=None,
        help="comma-separated catalog restriction (default: full registry)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool width for concurrent execution",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES,
        help="plan-cache byte budget",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append a {'stats': ...} JSON line after the responses",
    )
    parser.add_argument(
        "--plan-store", default=None, metavar="PATH",
        help="sqlite file for the persistent plan tier: plans survive the "
        "process, so repeat runs start warm (created on demand)",
    )
    parser.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="also write the final stats snapshot to PATH as JSON",
    )
    add_scheduler_arguments(parser)
    return parser


def _read_requests(path: str) -> list[MatchRequest]:
    """Parse the JSONL request file (skipping blank lines)."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    requests = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(MatchRequest.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ReproError) as exc:
            raise ReproError(f"request line {lineno}: {exc}") from exc
    return requests


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit code 0 when every request was served, 1 when any response
    carries an error (the responses are still all emitted) or the
    request file is malformed.
    """
    args = _build_parser().parse_args(argv)
    try:
        requests = _read_requests(args.requests)
    except (OSError, ReproError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1

    datasets = (
        [name.strip() for name in args.datasets.split(",") if name.strip()]
        if args.datasets is not None
        else None
    )
    service = MatchService(
        catalog=datasets, cache_bytes=args.cache_bytes, max_workers=args.workers,
        plan_store=args.plan_store, scheduler=scheduler_config_from_args(args),
    )
    responses = service.submit_many(requests)
    service.close()

    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        for response in responses:
            out.write(json.dumps(response.to_dict(), sort_keys=True) + "\n")
        if args.stats:
            out.write(
                json.dumps({"stats": service.stats().to_dict()}, sort_keys=True)
                + "\n"
            )
    finally:
        if args.output:
            out.close()

    stats = service.stats()
    if args.stats_json is not None:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    failed = sum(1 for r in responses if not r.ok)
    summary = (
        f"repro-serve: {len(responses)} responses "
        f"({failed} failed), cache hit rate "
        f"{stats.cache.hit_rate:.0%}, p95 latency {stats.latency_p95_s * 1e3:.1f}ms"
    )
    if stats.scheduler is not None:
        sched = stats.scheduler
        summary += (
            f"; scheduler: {sched['completed']} completed, "
            f"{sched['rejected']} rejected, {sched['expired']} expired, "
            f"{sched['degraded']} degraded"
        )
    print(summary, file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
