"""Multi-dataset catalog: lazy, configured :class:`Matcher` instances.

A deployment serves many data graphs, but a :class:`~repro.api.matcher.
Matcher` binds exactly one.  :class:`DatasetCatalog` is the indirection
between the two: it maps dataset *names* to matcher *recipes*
(:class:`CatalogEntry`) and constructs each Matcher lazily, on first
request — so a service fronting the whole Table II registry pays
data-graph loading and statistics only for the datasets traffic
actually touches.

Entries come from three places, mixable freely:

* the :mod:`repro.datasets` registry — any registered dataset name is
  servable by default (graphs load through ``load_dataset``, statistics
  through ``dataset_stats``, both process-cached);
* explicit graphs — ``DatasetCatalog({"prod": my_graph})`` serves an
  in-memory graph under a name of your choosing;
* per-dataset component overrides — an entry may pin its own filter /
  orderer / enumerator / limits / trained model, e.g. a learned orderer
  for one dataset and RI for the rest.

Per-request orderer overrides construct a *variant* matcher that shares
the base entry's data graph and statistics (only the orderer differs),
so switching orderers per request never re-pays Phase-0 work.  Unknown
names raise :class:`~repro.errors.RegistryError` listing the valid
choices in sorted order — the same contract as the component
registries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.api.matcher import Matcher
from repro.errors import RegistryError
from repro.graphs.graph import Graph
from repro.graphs.stats import GraphStats
from repro.matching.enumeration import DEFAULT_TIME_LIMIT
from repro.service.cache import PlanCache

__all__ = ["CatalogEntry", "DatasetCatalog"]


@dataclass
class CatalogEntry:
    """Recipe for one dataset's matcher (constructed lazily).

    ``data`` may be ``None`` for registry datasets (loaded through
    :func:`repro.datasets.load_dataset` on first use).  The component
    and limit fields mirror :class:`~repro.api.matcher.Matcher`'s
    constructor; ``model`` feeds the learned orderer.  ``shards`` (with
    ``shard_mode``) turns on partitioned matching for the dataset: the
    constructed matcher wraps the data graph in a
    :class:`~repro.graphs.partition.ShardedGraph` and the service fans
    per-shard enumeration through its shard pool.
    """

    name: str
    data: Graph | None = None
    filter: str = "gql"
    orderer: str = "ri"
    enumerator: str = "iterative"
    match_limit: int | None = 100_000
    time_limit: float | None = DEFAULT_TIME_LIMIT
    model: object = None
    stats: GraphStats | None = field(default=None, repr=False)
    shards: int | None = None
    shard_mode: str = "range"

    def load(self) -> tuple[Graph, GraphStats | None]:
        """The entry's data graph and (possibly shared) statistics."""
        if self.data is not None:
            return self.data, self.stats
        from repro.datasets import dataset_stats, load_dataset

        graph = load_dataset(self.name)
        return graph, self.stats if self.stats is not None else dataset_stats(self.name)


def _coerce_entry(name: str, value) -> CatalogEntry:
    """Normalize one catalog mapping value into a :class:`CatalogEntry`."""
    if isinstance(value, CatalogEntry):
        if value.name != name:
            raise RegistryError(
                f"catalog entry named {value.name!r} registered under {name!r}"
            )
        return value
    if isinstance(value, Graph):
        return CatalogEntry(name=name, data=value)
    if isinstance(value, dict):
        return CatalogEntry(name=name, **value)
    if value is None:
        return CatalogEntry(name=name)
    raise RegistryError(
        f"catalog value for {name!r} must be a Graph, CatalogEntry, "
        f"dict of overrides or None, got {type(value).__name__!r}"
    )


class DatasetCatalog:
    """Name → lazily constructed :class:`Matcher` mapping.

    Parameters
    ----------
    entries:
        ``None`` (serve every dataset in the :mod:`repro.datasets`
        registry), a list of registry names, or a mapping from name to
        ``Graph`` / :class:`CatalogEntry` / override-dict / ``None``.
    plan_cache:
        Shared :class:`PlanCache` injected into every constructed
        matcher (scoped by dataset name); ``None`` disables caching.
    """

    def __init__(
        self,
        entries=None,
        plan_cache: PlanCache | None = None,
    ):
        self.plan_cache = plan_cache
        self._lock = threading.Lock()
        self._matchers: dict[tuple[str, str | None], Matcher] = {}
        self._entries: dict[str, CatalogEntry] = {}
        if entries is None:
            from repro.datasets import DATASETS

            for name in DATASETS:
                self._entries[name] = CatalogEntry(name=name)
        elif isinstance(entries, dict):
            for name, value in entries.items():
                self._entries[name] = _coerce_entry(name, value)
        else:
            for name in entries:
                if not isinstance(name, str):
                    raise RegistryError(
                        "catalog entries must be a mapping or dataset names, "
                        f"got element of type {type(name).__name__!r}"
                    )
                self._entries[name] = CatalogEntry(name=name)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def attach_plan_cache(self, cache: PlanCache) -> None:
        """Install ``cache`` on the catalog *and* every built matcher.

        :class:`~repro.service.service.MatchService` calls this when
        adopting a prebuilt catalog that has no cache yet — matchers
        constructed before the hand-off must start caching too, not
        silently stay cold.
        """
        with self._lock:
            self.plan_cache = cache
            for matcher in self._matchers.values():
                matcher.plan_cache = cache

    def add(self, entry: CatalogEntry, overwrite: bool = False) -> CatalogEntry:
        """Register (or replace) a dataset entry.

        Replacing drops any constructed matchers for the name and
        invalidates the name's plan-cache scope — the explicit
        invalidation path for "the graph behind this name changed".
        """
        with self._lock:
            if entry.name in self._entries and not overwrite:
                raise RegistryError(
                    f"dataset {entry.name!r} is already in the catalog; "
                    "pass overwrite=True to replace it"
                )
            self._entries[entry.name] = entry
            self._drop_matchers(entry.name)
        if self.plan_cache is not None:
            self.plan_cache.invalidate_scope(entry.name)
        return entry

    def remove(self, name: str) -> None:
        """Drop a dataset (and its cached plans) from the catalog."""
        with self._lock:
            if name not in self._entries:
                raise self._unknown(name)
            del self._entries[name]
            self._drop_matchers(name)
        if self.plan_cache is not None:
            self.plan_cache.invalidate_scope(name)

    def _drop_matchers(self, name: str) -> None:
        for key in [k for k in self._matchers if k[0] == name]:
            del self._matchers[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Sorted dataset names currently servable."""
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _unknown(self, name: str) -> RegistryError:
        """Unknown-name error in the registry style (sorted choices)."""
        return RegistryError(
            f"unknown dataset {name!r}; valid choices: "
            f"{', '.join(sorted(self._entries))}"
        )

    def entry(self, name: str) -> CatalogEntry:
        """The recipe registered under ``name``."""
        with self._lock:
            if name not in self._entries:
                raise self._unknown(name)
            return self._entries[name]

    def matcher(self, name: str, orderer: str | None = None) -> Matcher:
        """The (lazily constructed) matcher for ``name``.

        ``orderer`` requests a variant with that orderer substituted;
        variants share the base matcher's data graph and statistics, so
        only the orderer itself is constructed anew.  Matchers are
        cached per ``(name, orderer)`` and shared across threads (see
        the :class:`Matcher` thread-safety contract).
        """
        key = (name, orderer)
        with self._lock:
            matcher = self._matchers.get(key)
            if matcher is not None:
                return matcher
            if name not in self._entries:
                raise self._unknown(name)
            entry = self._entries[name]
        # Construction happens outside the lock: loading a dataset can
        # take a while and must not serialize unrelated lookups.  A
        # racing thread may build the same matcher twice; first write
        # wins and the duplicates are equivalent.
        if orderer is not None:
            # Variants share the base matcher's data graph and stats —
            # and its shard layout, so per-request orderer overrides
            # keep the entry's partitioning (ShardedGraph carries the
            # layout; passing it back re-uses source graph and ranges).
            base = self.matcher(name)
            data = base.sharded if base.sharded is not None else base.data
            stats = base.stats
        else:
            data, stats = entry.load()
            if stats is None:
                stats = GraphStats(data)
        chosen = entry.orderer if orderer is None else orderer
        # Compare orderers by canonical registry name, so requesting the
        # entry's own learned orderer through an alias ("rl" for
        # "rlqvo") still carries the entry's model.  Unknown override
        # names fail here, registry-style, before any construction.
        from repro.api.registry import orderer_registry

        same_orderer = (
            chosen == entry.orderer
            or (
                chosen in orderer_registry
                and entry.orderer in orderer_registry
                and orderer_registry.canonical(chosen)
                == orderer_registry.canonical(entry.orderer)
            )
        )
        matcher = Matcher(
            data,
            filter=entry.filter,
            orderer=chosen,
            enumerator=entry.enumerator,
            shards=entry.shards if orderer is None else None,
            shard_mode=entry.shard_mode,
            match_limit=entry.match_limit,
            time_limit=entry.time_limit,
            stats=stats,
            model=entry.model if same_orderer else None,
            plan_cache=self.plan_cache,
            cache_scope=name,
        )
        with self._lock:
            existing = self._matchers.get(key)
            if existing is not None:
                return existing
            self._matchers[key] = matcher
            return matcher

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DatasetCatalog({', '.join(self.names())})"
