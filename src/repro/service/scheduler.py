"""Cost-aware admission and scheduling for :class:`MatchService`.

The paper's contribution is a cost model for *matching order*; this
module points the same signal at a second decision: *when and whether*
a request runs at all.  Between ``MatchService.submit*`` and the worker
pool sits a bounded priority queue ordered by

    (priority desc, deadline asc, estimated plan cost asc, FIFO seq)

so under an adversarial mix a cheap query never starves behind an
expensive one — the static left-deep cost estimate
(:attr:`QueryPlan.estimated_cost`) that Phase (2) already computes is
exactly the admission-time signal, and estimating it *warms the plan
cache*, so the worker's later ``submit`` is a cache hit rather than
duplicated planning work.

The scheduler changes **when** work runs, never **what it returns**:
an admitted request executes through the unmodified
:meth:`MatchService.submit` path under its exact limit envelope, so
match sequences and ``#enum`` stay bit-identical to a direct call
(pinned by ``tests/service/test_scheduler.py``).  The control surfaces
are all *around* execution:

* **backpressure** — a full queue or an exhausted per-tenant budget
  rejects at admission with a structured
  :class:`~repro.service.requests.ServiceError` (``code="rejected"``,
  ``retry_after_s`` set), which the HTTP tier maps to
  ``429 Too Many Requests`` + ``Retry-After``;
* **deadline enforcement** — a request still queued past its
  ``deadline_s`` fails fast (``code="deadline_expired"``) without ever
  occupying a worker; deadlines never cap *execution*;
* **retry-with-degrade** — when an attempt times out and the deadline
  still has room, one re-attempt runs under the configured degraded
  envelope (tighter ``match_limit``/``time_limit``, optionally a
  cheaper orderer); the served response is marked ``degraded=True``,
  ``attempts=2`` and is bit-identical to a direct call with the same
  degraded envelope.

Examples
--------
>>> import numpy as np
>>> from repro.graphs import erdos_renyi, extract_query
>>> from repro.service import MatchRequest, MatchService, SchedulerConfig
>>> data = erdos_renyi(120, 360, 3, seed=7)
>>> service = MatchService(
...     catalog={"tiny": data}, scheduler=SchedulerConfig(workers=2))
>>> query = extract_query(data, 4, np.random.default_rng(0))
>>> future = service.submit_scheduled(
...     MatchRequest("tiny", query, tenant="acme", deadline_s=30.0))
>>> scheduled = future.result(timeout=60)
>>> direct = service.submit(MatchRequest("tiny", query))
>>> scheduled.ok and scheduled.attempts == 1
True
>>> (scheduled.num_matches, scheduled.num_enumerations) == (
...     direct.num_matches, direct.num_enumerations)
True
>>> service.close()
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace

from repro.service.requests import UNSET, MatchRequest, ServiceError

__all__ = [
    "AdmissionQueue",
    "CostAwareScheduler",
    "SchedulerConfig",
    "SchedulerStats",
    "entry_sort_key",
]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs for :class:`CostAwareScheduler`.

    Attributes
    ----------
    workers:
        Scheduler worker threads draining the admission queue.
    queue_capacity:
        Bounded queue depth; admission past it is rejected (429).
    default_deadline_s:
        Queueing deadline applied when a request carries none;
        ``None`` means requests without a deadline wait indefinitely.
    default_tenant:
        Accounting principal for requests with ``tenant=None``.
    tenant_max_inflight:
        Per-tenant cap on admitted-but-unfinished requests; ``None``
        disables the cap.
    tenant_cost_budget:
        Per-tenant cap on the *sum of estimated plan costs* in flight.
        A tenant with nothing in flight is always allowed one request —
        a budget smaller than every plan must not deadlock the tenant.
    retry_degrade:
        Re-attempt a timed-out request once under the degraded
        envelope below (only when the deadline still has room).
    degrade_match_limit / degrade_time_limit:
        The degraded envelope: the retry's limits are tightened to at
        most these values (``None`` leaves that limit untouched).
    degrade_orderer:
        Optional cheaper orderer registry name for the retry.
    retry_after_s:
        Hint surfaced on rejections (HTTP ``Retry-After``).
    executor:
        Where admitted requests execute: ``"thread"`` (scheduler worker
        threads call :meth:`MatchService.submit` directly — the PR 9
        behaviour) or ``"process"`` (workers block on the service's
        :class:`~repro.procpool.pool.ProcessPool`, so CPU-bound
        enumeration scales with cores).  Results are bit-identical
        either way.
    process_workers:
        Worker-process count for ``executor="process"``.
    durable_path:
        Optional sqlite path for the durable admission journal
        (:class:`~repro.procpool.durable.DurableQueue`): admissions are
        journaled before queueing and replayed on the next scheduler
        construction over the same path, so a killed server's
        admitted-but-unserved backlog is recovered.  ``None`` (default)
        keeps admission purely in memory.
    calibration_alpha:
        EWMA smoothing factor for the observed-cost feedback loop
        (:class:`~repro.procpool.feedback.CostCalibrator`).
    """

    workers: int = 2
    queue_capacity: int = 64
    default_deadline_s: float | None = None
    default_tenant: str = "default"
    tenant_max_inflight: int | None = None
    tenant_cost_budget: float | None = None
    retry_degrade: bool = True
    degrade_match_limit: int | None = 1000
    degrade_time_limit: float | None = None
    degrade_orderer: str | None = None
    retry_after_s: float = 1.0
    executor: str = "thread"
    process_workers: int = 4
    durable_path: str | None = None
    calibration_alpha: float = 0.2


def entry_sort_key(
    *,
    priority: int = 0,
    deadline: float | None = None,
    cost: float = 0.0,
    seq: int = 0,
) -> tuple:
    """The admission-queue ordering: deadline-then-cost within a class.

    Higher ``priority`` pops first; within one class the earlier
    absolute ``deadline`` wins (no deadline sorts last), then the
    cheaper estimated plan, then FIFO sequence as the total-order
    tiebreak.

    >>> cheap = entry_sort_key(cost=10.0, seq=1)
    >>> adversarial = entry_sort_key(cost=1e9, seq=0)
    >>> cheap < adversarial
    True
    >>> urgent = entry_sort_key(deadline=5.0, cost=1e9, seq=2)
    >>> urgent < cheap
    True
    """
    return (
        -int(priority),
        math.inf if deadline is None else float(deadline),
        float(cost),
        int(seq),
    )


@dataclass
class _Entry:
    """One admitted request waiting in (or draining from) the queue."""

    request: MatchRequest
    future: Future
    tenant: str
    cost: float  # calibrated estimate (the queue orders by this)
    deadline: float | None  # absolute monotonic seconds, or None
    enqueued_at: float
    seq: int
    raw_cost: float = 0.0  # uncalibrated static estimate (feedback input)
    journal_id: int | None = None  # durable-queue row, when journaling

    @property
    def sort_key(self) -> tuple:
        return entry_sort_key(
            priority=self.request.priority,
            deadline=self.deadline,
            cost=self.cost,
            seq=self.seq,
        )


class AdmissionQueue:
    """A bounded, thread-safe priority queue over :class:`_Entry`.

    ``push`` returns ``False`` instead of blocking when the queue is
    full — backpressure is the caller's structured rejection, never a
    hidden wait.  ``pop`` blocks until an entry is available or the
    queue is closed; after :meth:`close`, remaining entries still drain
    (pops keep succeeding) and ``pop`` returns ``None`` only once the
    queue is closed *and* empty.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self._capacity = int(capacity)
        self._heap: list[tuple[tuple, _Entry]] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def capacity(self) -> int:
        """Maximum number of queued entries."""
        return self._capacity

    def push(self, entry: _Entry) -> bool:
        """Admit one entry; ``False`` when the queue is full."""
        with self._not_empty:
            if self._closed:
                return False
            if len(self._heap) >= self._capacity:
                return False
            heapq.heappush(self._heap, (entry.sort_key, entry))
            self._not_empty.notify()
            return True

    def pop(self, timeout: float | None = None) -> _Entry | None:
        """The best-ranked entry; ``None`` on closed-and-empty/timeout."""
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return heapq.heappop(self._heap)[1]

    def close(self) -> None:
        """Stop admissions and wake blocked poppers."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_all(self) -> list[_Entry]:
        """Remove and return every queued entry (best-ranked first).

        The non-graceful shutdown path: entries returned here were
        admitted but will never run, and the caller must resolve their
        futures (with the ``rejected`` envelope) — a popped entry is
        the popper's responsibility, always.
        """
        with self._not_empty:
            entries = [entry for _, entry in sorted(self._heap)]
            self._heap.clear()
            return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class _TenantAccount:
    """Mutable per-tenant accounting (guarded by the scheduler lock)."""

    __slots__ = (
        "inflight",
        "cost_inflight",
        "admitted",
        "rejected",
        "expired",
        "degraded",
        "completed",
        "errors",
    )

    def __init__(self):
        self.inflight = 0
        self.cost_inflight = 0.0
        self.admitted = 0
        self.rejected = 0
        self.expired = 0
        self.degraded = 0
        self.completed = 0
        self.errors = 0

    def to_dict(self) -> dict:
        # Summed float costs leave ~1e-14 residue once everything
        # drains; clamp so an idle tenant reports exactly 0.0.
        cost = float(self.cost_inflight)
        return {
            "inflight": int(self.inflight),
            "cost_inflight": 0.0 if abs(cost) < 1e-9 else cost,
            "admitted": int(self.admitted),
            "rejected": int(self.rejected),
            "expired": int(self.expired),
            "degraded": int(self.degraded),
            "completed": int(self.completed),
            "errors": int(self.errors),
        }


@dataclass(frozen=True)
class SchedulerStats:
    """Point-in-time snapshot of a :class:`CostAwareScheduler`.

    ``executor`` names the execution tier (``"thread"``/``"process"``);
    ``procpool`` carries the process pool's liveness snapshot when that
    tier is in play.  ``recovered`` counts entries replayed from the
    durable journal (``durable`` holds its snapshot when configured),
    and ``calibration`` is the observed-cost feedback state — the
    estimate-vs-observed loop surfaced per ``(dataset, query-size)``
    bucket.
    """

    queue_depth: int
    queue_capacity: int
    workers: int
    admitted: int
    rejected: int
    expired: int
    degraded: int
    completed: int
    errors: int
    tenants: dict = field(default_factory=dict)
    executor: str = "thread"
    recovered: int = 0
    calibration: dict = field(default_factory=dict)
    procpool: dict | None = None
    durable: dict | None = None

    def to_dict(self) -> dict:
        """JSON-compatible payload (merged into ``/stats``)."""
        return {
            "queue_depth": int(self.queue_depth),
            "queue_capacity": int(self.queue_capacity),
            "workers": int(self.workers),
            "executor": str(self.executor),
            "admitted": int(self.admitted),
            "rejected": int(self.rejected),
            "expired": int(self.expired),
            "degraded": int(self.degraded),
            "completed": int(self.completed),
            "errors": int(self.errors),
            "recovered": int(self.recovered),
            "tenants": {
                name: dict(stats)
                for name, stats in sorted(self.tenants.items())
            },
            "calibration": dict(self.calibration),
            "procpool": dict(self.procpool) if self.procpool is not None else None,
            "durable": dict(self.durable) if self.durable is not None else None,
        }


class CostAwareScheduler:
    """The admission/scheduling tier between requests and workers.

    Parameters
    ----------
    service:
        The :class:`MatchService` whose ``submit`` actually executes
        admitted requests (and whose catalog/plan-cache the default
        cost estimator plans through).
    config:
        A :class:`SchedulerConfig`; ``None`` uses the defaults.
    estimator:
        Optional ``(MatchRequest) -> float`` override for the admission
        cost signal — used by tests to schedule against stub services;
        production uses the plan's static cost estimate.
    """

    def __init__(self, service, config: SchedulerConfig | None = None, *,
                 estimator=None):
        self._service = service
        self._config = config if config is not None else SchedulerConfig()
        if self._config.workers <= 0:
            raise ValueError("scheduler workers must be positive")
        if self._config.executor not in ("thread", "process"):
            raise ValueError(
                f"scheduler executor must be 'thread' or 'process', "
                f"got {self._config.executor!r}"
            )
        self._estimator = estimator
        self._queue = AdmissionQueue(self._config.queue_capacity)
        self._lock = threading.Lock()
        self._accounts: dict[str, _TenantAccount] = {}
        self._seq = 0
        self._admitted = 0
        self._rejected = 0
        self._expired = 0
        self._degraded = 0
        self._completed = 0
        self._errors = 0
        self._recovered = 0
        self._closed = False
        # Observed-cost feedback (local imports: repro.procpool imports
        # repro.service.requests, so the module edge stays one-way at
        # import time).
        from repro.procpool.feedback import CostCalibrator

        self._calibrator = CostCalibrator(alpha=self._config.calibration_alpha)
        if self._config.executor == "process":
            if getattr(service, "procpool", None) is None:
                raise ValueError(
                    "executor='process' requires the service to carry a "
                    "process pool (construct through MatchService(..., "
                    "scheduler=SchedulerConfig(executor='process')))"
                )
            self._execute = self._execute_process
        else:
            # Late-bound on purpose: tests (and instrumentation) replace
            # ``service.submit`` on the instance after construction.
            self._execute = self._execute_thread
        self._journal = None
        if self._config.durable_path is not None:
            from repro.procpool.durable import DurableQueue

            self._journal = DurableQueue(self._config.durable_path)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-sched-{i}",
                daemon=True,
            )
            for i in range(self._config.workers)
        ]
        for worker in self._workers:
            worker.start()
        if self._journal is not None:
            self._recover()

    @property
    def config(self) -> SchedulerConfig:
        """The immutable configuration this scheduler runs under."""
        return self._config

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _estimate(self, request: MatchRequest) -> float:
        """The admission cost signal for one request.

        Plans the (canonicalized) query through the service's shared
        cache — so estimation is also cache warming: the worker's later
        ``submit`` reuses the exact plan — and reads the static
        left-deep estimate Phase (2) recorded.  Manual/fallback orders
        carry ``nan``; those estimate as ``0.0`` (schedule eagerly
        rather than punish the unknown).  Raises registry/validation
        errors synchronously, so a bad dataset or orderer name never
        enters the queue.
        """
        if self._estimator is not None:
            return float(self._estimator(request))
        matcher = self._service.catalog.matcher(request.dataset, request.orderer)
        _, plan, _ = self._service._plan_canonical(matcher, request.query)
        try:
            cost = float(plan.estimated_cost)
        except (TypeError, ValueError):
            return 0.0
        return cost if math.isfinite(cost) else 0.0

    def _execute_thread(self, request: MatchRequest):
        """Serve one admitted request on this worker thread (default)."""
        return self._service.submit(request)

    def _execute_process(self, request: MatchRequest):
        """Serve one admitted request through the process pool.

        The scheduler worker thread blocks on the worker process —
        exactly the point: *threads* hold admission slots cheaply while
        *processes* burn cores on Phase (3).  The parent meters the
        remote response into the service's stats, since the worker's
        private counters die with it.
        """
        response = self._service.procpool.execute(request)
        self._service._record_remote(response)
        return response

    def submit(self, request: MatchRequest) -> Future:
        """Admit one request; a ``Future`` resolving to its response.

        Raises :class:`ServiceError` (``code="rejected"``) immediately
        on backpressure — a full queue or an exhausted tenant budget —
        and plain validation errors for unknown names.  The future
        resolves to the served :class:`MatchResponse` (with
        ``queue_time_s``/``attempts``/``degraded`` filled in) or raises
        the failure: ``deadline_expired`` when the request died in the
        queue, or whatever execution raised.
        """
        if request.stream:
            raise ServiceError(
                "streaming requests cannot be scheduled; use "
                "MatchService.stream() directly",
                code="validation",
            )
        config = self._config
        raw_cost = self._estimate(request)
        # The observed-cost loop: a bucket that historically ran hotter
        # (or cooler) than its static estimate has its admission cost
        # scaled accordingly; unobserved buckets multiply by 1.0.
        cost = raw_cost * self._calibrator.correction(
            request.dataset, request.query.num_vertices
        )
        tenant = request.tenant if request.tenant is not None else config.default_tenant
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else config.default_deadline_s
        )
        now = time.monotonic()
        deadline = None if deadline_s is None else now + float(deadline_s)
        with self._lock:
            if self._closed:
                raise ServiceError("scheduler is shut down", code="rejected")
            account = self._accounts.setdefault(tenant, _TenantAccount())
            if (
                config.tenant_max_inflight is not None
                and account.inflight >= config.tenant_max_inflight
            ):
                account.rejected += 1
                self._rejected += 1
                raise ServiceError(
                    f"tenant {tenant!r} is at its in-flight cap "
                    f"({config.tenant_max_inflight})",
                    code="rejected",
                    retry_after_s=config.retry_after_s,
                )
            if (
                config.tenant_cost_budget is not None
                and account.inflight > 0
                and account.cost_inflight + cost > config.tenant_cost_budget
            ):
                account.rejected += 1
                self._rejected += 1
                raise ServiceError(
                    f"tenant {tenant!r} is over its in-flight cost budget "
                    f"({config.tenant_cost_budget:g})",
                    code="rejected",
                    retry_after_s=config.retry_after_s,
                )
            account.inflight += 1
            account.cost_inflight += cost
            account.admitted += 1
            self._admitted += 1
            seq = self._seq
            self._seq += 1
        journal_id = None
        if self._journal is not None:
            # Journal *before* queueing: durability must cover the
            # window between admission and execution, so a crash right
            # after this line replays the request rather than losing it.
            journal_id = self._journal.record(
                request.to_dict(),
                tenant=tenant,
                cost=cost,
                priority=request.priority,
                deadline_wall=(
                    None if deadline_s is None else time.time() + float(deadline_s)
                ),
            )
        entry = _Entry(
            request=request,
            future=Future(),
            tenant=tenant,
            cost=cost,
            deadline=deadline,
            enqueued_at=now,
            seq=seq,
            raw_cost=raw_cost,
            journal_id=journal_id,
        )
        if not self._queue.push(entry):
            if journal_id is not None:
                self._journal.complete(journal_id)
            with self._lock:
                account.inflight -= 1
                account.cost_inflight -= cost
                account.admitted -= 1
                account.rejected += 1
                self._admitted -= 1
                self._rejected += 1
            raise ServiceError(
                f"admission queue full ({self._queue.capacity} requests)",
                code="rejected",
                retry_after_s=config.retry_after_s,
            )
        return entry.future

    # ------------------------------------------------------------------
    # Durable recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal's admitted-but-unserved backlog.

        Runs once, at construction: every journaled row is re-admitted
        exactly once (reusing its persisted priority/cost and its row —
        no double journaling), with the wall-clock deadline translated
        back into this process's monotonic time.  An already-expired
        deadline still admits: the worker expires it through the normal
        path, which reaches a terminal state and clears the row.  If the
        in-memory queue is smaller than the backlog, the overflow rows
        stay journaled for the next restart.
        """
        from repro.errors import ReproError

        now_wall = time.time()
        now_mono = time.monotonic()
        for recovered in self._journal.recover():
            try:
                request = MatchRequest.from_dict(recovered.request)
            except ReproError:
                # An unreadable envelope can never be served; dropping
                # the row is its terminal state.
                self._journal.complete(recovered.entry_id)
                continue
            deadline = (
                None
                if recovered.deadline_wall is None
                else now_mono + (recovered.deadline_wall - now_wall)
            )
            with self._lock:
                account = self._accounts.setdefault(
                    recovered.tenant, _TenantAccount()
                )
                account.inflight += 1
                account.cost_inflight += recovered.cost
                account.admitted += 1
                self._admitted += 1
                self._recovered += 1
                seq = self._seq
                self._seq += 1
            entry = _Entry(
                request=request,
                future=Future(),
                tenant=recovered.tenant,
                cost=recovered.cost,
                deadline=deadline,
                enqueued_at=now_mono,
                seq=seq,
                raw_cost=recovered.cost,
                journal_id=recovered.entry_id,
            )
            if not self._queue.push(entry):
                with self._lock:
                    account.inflight -= 1
                    account.cost_inflight -= recovered.cost
                    account.admitted -= 1
                    self._admitted -= 1
                    self._recovered -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _degraded_request(self, request: MatchRequest) -> MatchRequest | None:
        """The retry envelope for a timed-out request, or ``None``.

        Limits only ever tighten: a configured degrade limit replaces
        the request's when the request's is unset, unlimited, or
        looser.  ``None`` means the degraded envelope is identical to
        the original — nothing to retry with.
        """
        config = self._config
        changes: dict = {}
        degrade_ml = config.degrade_match_limit
        if degrade_ml is not None:
            current = request.match_limit
            if current is UNSET or current is None or current > degrade_ml:
                changes["match_limit"] = degrade_ml
        degrade_tl = config.degrade_time_limit
        if degrade_tl is not None:
            current = request.time_limit
            if current is UNSET or current is None or current > degrade_tl:
                changes["time_limit"] = degrade_tl
        if (
            config.degrade_orderer is not None
            and config.degrade_orderer != request.orderer
        ):
            changes["orderer"] = config.degrade_orderer
        if not changes:
            return None
        return replace(request, **changes)

    def _worker_loop(self) -> None:
        while True:
            entry = self._queue.pop()
            if entry is None:
                return
            self._serve(entry)

    def _serve(self, entry: _Entry) -> None:
        request = entry.request
        if not entry.future.set_running_or_notify_cancel():
            self._release(entry)  # cancelled while queued
            return
        queue_time = time.monotonic() - entry.enqueued_at
        outcome = "completed"
        try:
            if entry.deadline is not None and time.monotonic() >= entry.deadline:
                outcome = "expired"
                raise ServiceError(
                    f"queueing deadline expired after {queue_time:.3f}s; "
                    "the request never ran",
                    code="deadline_expired",
                )
            attempts, degraded = 1, False
            response = self._execute(request)
            if (
                response.timed_out
                and self._config.retry_degrade
                and (entry.deadline is None or time.monotonic() < entry.deadline)
            ):
                retry = self._degraded_request(request)
                if retry is not None:
                    response = self._execute(retry)
                    attempts, degraded = 2, True
        except BaseException as exc:
            if outcome != "expired":
                outcome = "error"
            self._release(entry, outcome)
            entry.future.set_exception(exc)
            return
        if degraded:
            outcome = "degraded"
        elif not response.timed_out:
            # Close the loop: the actual Phase (3) seconds this request
            # cost, against the static estimate admission ordered by.
            # Truncated observations (timeout, degrade) are skipped —
            # they measure the limit, not the plan.
            self._calibrator.observe(
                request.dataset,
                request.query.num_vertices,
                estimated=entry.raw_cost,
                observed_s=response.enum_time,
            )
        self._release(entry, outcome)
        entry.future.set_result(
            replace(
                response,
                queue_time_s=queue_time,
                attempts=attempts,
                degraded=degraded,
                executor=self._config.executor,
            )
        )

    def _release(self, entry: _Entry, outcome: str | None = None) -> None:
        if entry.journal_id is not None and self._journal is not None:
            # Any outcome reaching here is terminal — served, failed,
            # expired, cancelled, or rejected at shutdown — so the
            # journal row is done; only a crash leaves rows behind.
            self._journal.complete(entry.journal_id)
        with self._lock:
            account = self._accounts.get(entry.tenant)
            if account is not None:
                account.inflight -= 1
                account.cost_inflight -= entry.cost
                if outcome == "expired":
                    account.expired += 1
                elif outcome == "error":
                    account.errors += 1
                elif outcome == "rejected":
                    account.rejected += 1
                elif outcome == "degraded":
                    account.degraded += 1
                    account.completed += 1
                elif outcome == "completed":
                    account.completed += 1
            if outcome == "expired":
                self._expired += 1
            elif outcome == "error":
                self._errors += 1
            elif outcome == "rejected":
                self._rejected += 1
            elif outcome == "degraded":
                self._degraded += 1
                self._completed += 1
            elif outcome == "completed":
                self._completed += 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def stats(self) -> SchedulerStats:
        """A consistent :class:`SchedulerStats` snapshot."""
        depth = len(self._queue)
        calibration = self._calibrator.stats()
        procpool = None
        if self._config.executor == "process":
            pool = getattr(self._service, "procpool", None)
            if pool is not None:
                procpool = pool.health()
        durable = self._journal.stats() if self._journal is not None else None
        with self._lock:
            return SchedulerStats(
                queue_depth=depth,
                queue_capacity=self._queue.capacity,
                workers=len(self._workers),
                admitted=self._admitted,
                rejected=self._rejected,
                expired=self._expired,
                degraded=self._degraded,
                completed=self._completed,
                errors=self._errors,
                tenants={
                    name: account.to_dict()
                    for name, account in self._accounts.items()
                },
                executor=self._config.executor,
                recovered=self._recovered,
                calibration=calibration,
                procpool=procpool,
                durable=durable,
            )

    def shutdown(self, wait: bool = True, *, drain: bool = True) -> None:
        """Stop admissions, then stop the workers.

        ``drain=True`` (default) lets queued entries still execute —
        the graceful path; callers that want to abandon work should
        cancel their futures first.  ``drain=False`` flushes the queue
        instead: every queued-but-unstarted entry's future fails with
        the structured ``rejected`` envelope (in-flight work still
        finishes — execution is never interrupted mid-request).
        Idempotent; the first call's ``drain`` wins.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            rejection = ServiceError(
                "scheduler shut down before the request ran",
                code="rejected",
            )
            for entry in self._queue.drain_all():
                self._release(entry, "rejected")
                if entry.future.set_running_or_notify_cancel():
                    entry.future.set_exception(rejection)
        self._queue.close()
        if wait:
            for worker in self._workers:
                worker.join()
            if self._journal is not None:
                self._journal.close()

    def __enter__(self) -> "CostAwareScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CostAwareScheduler(workers={len(self._workers)}, "
            f"queued={len(self._queue)})"
        )
