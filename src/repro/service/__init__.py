"""repro.service — serve many datasets, many clients, repeated queries.

The :mod:`repro.api` facade made one data graph prepare-once/query-many;
this package makes the *deployment* so.  A single :class:`MatchService`
holds:

* a **multi-dataset catalog** (:class:`DatasetCatalog`) of lazily
  constructed, per-dataset-configurable
  :class:`~repro.api.matcher.Matcher` instances, seeded from the
  :mod:`repro.datasets` registry or from your own graphs;
* a **canonical-fingerprint plan cache** (:class:`PlanCache`): queries
  are exactly canonicalized at the boundary, so every isomorph of a
  cached query hits one entry and skips the filtering and ordering
  phases entirely — bit-identical to cold planning on match sequences
  and ``#enum``, bounded by an LRU byte budget, explicitly
  invalidatable;
* **concurrent request execution**: structured :class:`MatchRequest` /
  :class:`MatchResponse` payloads, a thread-pool ``submit_many`` over
  the documented-thread-safe matchers, and a :class:`ServiceStats`
  snapshot (requests, hit rate, per-phase totals, latency
  percentiles);
* an optional **cost-aware admission/scheduling tier**
  (:class:`CostAwareScheduler`, attached via
  ``MatchService(..., scheduler=SchedulerConfig(...))``): a bounded
  priority queue ordered by (priority, deadline, estimated plan cost)
  with per-tenant budgets, structured 429-style rejection
  (:class:`ServiceError`), queue-deadline fail-fast, and
  retry-with-degrade on timeout — scheduling changes *when* work runs,
  never *what it returns*.

The ``repro-serve`` CLI (:mod:`repro.service.cli`) runs a JSONL request
file against the catalog and emits JSONL responses.

Example
-------
>>> from repro.service import MatchService, MatchRequest
>>> from repro.graphs import erdos_renyi, extract_query
>>> import numpy as np
>>> data = erdos_renyi(120, 360, 3, seed=5)           # your data graph
>>> service = MatchService(catalog={"tiny": data})    # serve it by name
>>> rng = np.random.default_rng(0)
>>> queries = [extract_query(data, 4, rng) for _ in range(3)]
>>> first = service.submit_many([MatchRequest("tiny", q) for q in queries])
>>> all(r.ok and not r.cache_hit for r in first)
True
>>> repeat = service.submit_many([MatchRequest("tiny", q) for q in queries])
>>> all(r.ok and r.cache_hit for r in repeat)   # plans amortized
True
>>> repeat[0].num_enumerations == first[0].num_enumerations
True
"""

from repro.service.cache import CacheStats, PlanCache
from repro.service.catalog import CatalogEntry, DatasetCatalog
from repro.service.requests import (
    ERROR_HTTP_STATUS,
    UNSET,
    MatchRequest,
    MatchResponse,
    ServiceError,
    error_payload,
    http_status_for,
)
from repro.service.scheduler import (
    CostAwareScheduler,
    SchedulerConfig,
    SchedulerStats,
)
from repro.service.service import (
    STATS_SCHEMA_VERSION,
    MatchService,
    ServiceStats,
)

__all__ = [
    "ERROR_HTTP_STATUS",
    "STATS_SCHEMA_VERSION",
    "UNSET",
    "CacheStats",
    "CatalogEntry",
    "CostAwareScheduler",
    "DatasetCatalog",
    "MatchRequest",
    "MatchResponse",
    "MatchService",
    "PlanCache",
    "SchedulerConfig",
    "SchedulerStats",
    "ServiceError",
    "ServiceStats",
    "error_payload",
    "http_status_for",
]
