"""Canonical-fingerprint plan cache: amortize Phases (1)–(2) across requests.

Planning — filtering plus the (potentially learned) ordering phase — is
the expensive per-query step a deployment pays over and over, even
though production workloads keep re-asking isomorphic queries against
long-lived data graphs.  :class:`PlanCache` is the amortization point: a
thread-safe LRU keyed by ``(scope, shard_layout, filter, orderer,
fingerprint)`` — the layout token keeps sharded and unsharded plans for
one fingerprint apart — where
the fingerprint is the *exact* canonical isomorphism-class hash of
:func:`repro.graphs.canonical.canonical_fingerprint`, holding frozen
:class:`~repro.api.plan.QueryPlan` objects whose live contexts let
:meth:`~repro.api.matcher.Matcher.execute` skip straight to Phase (3).

Soundness: a fingerprint hit alone is not enough to reuse a plan — the
cached plan's order and context are expressed in the cached query's
vertex numbering, so :meth:`PlanCache.get` additionally checks the
stored query for *exact* equality with the requested one and reports a
miss otherwise.  Callers that canonicalize queries before planning (the
service does, at the request boundary) therefore hit for every isomorph
of a cached query; callers that don't still get correct, if narrower,
caching for repeated identical queries.

Memory is bounded by a byte budget: each entry is charged its plan's
``candidate_space_bytes`` plus an estimate of the candidate arrays it
keeps alive, and least-recently-used entries are evicted until the
budget holds.  Hit/miss/eviction counters are kept for the service's
:class:`~repro.service.service.ServiceStats` snapshot, and invalidation
is explicit: per key, per scope (e.g. one dataset), or everything.

Persistence (the second tier): constructed with a
:class:`~repro.server.store.PlanStore` (``store=``), the cache becomes
write-through — every cached plan's :meth:`~repro.api.plan.QueryPlan.
to_dict` payload is also filed durably, a memory miss falls through to
the store (deserializing into a *detached* plan the owning matcher
re-attaches), and invalidation voids both tiers.  Warm state thereby
survives restarts and is shareable across worker processes; an
unreadable or stale store row degrades to a plain miss.  Byte-budget
*evictions* deliberately do not touch the store — the memory tier
bounds residency, the durable tier is the archive.
"""

from __future__ import annotations

import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.plan import QueryPlan
from repro.errors import ReproError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids service→server import
    from repro.server.store import PlanStore

__all__ = ["CacheStats", "PlanCache"]

#: Fixed per-entry charge covering the plan object, key strings and the
#: small per-vertex metadata the byte budget would otherwise miss.
ENTRY_OVERHEAD_BYTES = 2048

#: Default byte budget — roomy for thousands of query-sized plans while
#: bounding a service that caches large candidate spaces.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of a :class:`PlanCache`'s counters.

    ``hits`` / ``misses`` count :meth:`PlanCache.get` outcomes (a
    fingerprint collision that fails the exact-query check counts as a
    miss), ``evictions`` counts entries dropped by the byte budget —
    explicit invalidation is not an eviction.  ``store_hits`` counts the
    subset of hits served from the persistent second tier (a fresh
    process's warm starts); they are included in ``hits`` too.
    """

    hits: int
    misses: int
    evictions: int
    plans: int
    bytes: int
    max_bytes: int
    store_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-compatible payload (plus the derived hit rate)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "plans": int(self.plans),
            "bytes": int(self.bytes),
            "max_bytes": int(self.max_bytes),
            "store_hits": int(self.store_hits),
            "hit_rate": float(self.hit_rate),
        }


def _plan_cost_bytes(plan: QueryPlan) -> int:
    """Byte charge for caching ``plan``: its live Phase (1) footprint.

    ``candidate_space_bytes`` is the measured flat per-edge index; the
    candidate arrays themselves are estimated from the recorded counts
    (int64 entries).  An exact-to-the-byte figure is not the point — the
    budget needs to scale with what the entry actually pins in memory.
    """
    return (
        ENTRY_OVERHEAD_BYTES
        + int(plan.candidate_space_bytes)
        + 8 * sum(int(c) for c in plan.candidate_counts)
    )


class PlanCache:
    """Thread-safe LRU over frozen query plans with a byte budget.

    Parameters
    ----------
    max_bytes:
        Budget for the summed entry costs (see :func:`_plan_cost_bytes`);
        inserting past it evicts least-recently-used entries.  A single
        plan costlier than the whole budget is not cached in memory
        (it is still persisted when a store is attached).
    store:
        Optional :class:`~repro.server.store.PlanStore` second tier:
        writes go through to it, memory misses fall back to it, and
        invalidation voids it alongside the memory tier.

    Examples
    --------
    >>> from repro.service import PlanCache
    >>> cache = PlanCache(max_bytes=1 << 20)
    >>> cache.stats().plans
    0
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        store: "PlanStore | None" = None,
    ):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self.store = store
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[QueryPlan, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._store_hits = 0

    def attach_store(self, store: "PlanStore") -> None:
        """Install (or replace) the persistent second tier.

        The service calls this when a ``plan_store`` is configured after
        the cache already exists (e.g. a prebuilt catalog carrying its
        own cache) — already-cached plans start persisting on their next
        insert; nothing is backfilled retroactively.
        """
        with self._lock:
            self.store = store

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------
    def get(self, key: tuple, query: Graph | None = None) -> QueryPlan | None:
        """The cached plan under ``key``, or ``None`` (counted as a miss).

        When ``query`` is given, the stored plan's query must equal it
        exactly — the guard that makes fingerprint keying sound even if
        two non-identical graphs ever collided on a fingerprint.

        A memory miss falls through to the persistent store (when one is
        attached): a readable row deserializes into a *detached* plan —
        no live Phase (1) context — which is promoted into the memory
        tier and returned as a hit (counted in ``store_hits`` too).  The
        caller (see :meth:`repro.api.matcher.Matcher.plan_fingerprinted`)
        re-attaches it; an unreadable or stale row is dropped and served
        as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                plan, _cost = entry
                if query is None or plan.query == query:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return plan
            store = self.store
        if store is not None:
            plan = self._load_from_store(store, key, query)
            if plan is not None:
                self._insert_memory(key, plan)
                with self._lock:
                    self._hits += 1
                    self._store_hits += 1
                return plan
        with self._lock:
            self._misses += 1
        return None

    @staticmethod
    def _load_from_store(store, key: tuple, query: Graph | None):
        """Deserialize a store row, or ``None`` (dropping bad rows).

        Failure handling is the point: an undecodable/unsupported
        payload (older plan schema, truncated write) is deleted and
        treated as a miss so a stale store can only cost a cold plan,
        never an error; an exact-query mismatch (fingerprint collision)
        is a miss but the row — correct for *its* query — stays.
        """
        try:
            payload = store.get(key)
        except sqlite3.Error:
            return None
        if payload is None:
            return None
        try:
            plan = QueryPlan.from_dict(payload)
        except ReproError:
            try:
                store.drop(key)
            except sqlite3.Error:
                pass
            return None
        if query is not None and plan.query != query:
            return None
        return plan

    def put(self, key: tuple, plan: QueryPlan, persist: bool = True) -> bool:
        """Insert ``plan`` under ``key``; evict LRU entries past budget.

        Returns whether the plan was cached in memory (an entry larger
        than the whole budget is skipped rather than thrashing the cache
        empty).  Re-inserting an existing key replaces the entry in
        place.  With a store attached the payload is also written
        through durably (even when the memory tier declined it);
        ``persist=False`` updates the memory tier only — how re-attached
        store plans are promoted without rewriting identical rows.
        """
        cached = self._insert_memory(key, plan)
        if persist and self.store is not None:
            try:
                self.store.put(key, plan.to_dict())
            except sqlite3.Error:
                pass  # durability is best-effort; serving must not break
        return cached

    def _insert_memory(self, key: tuple, plan: QueryPlan) -> bool:
        """The memory-tier LRU insert (no store traffic)."""
        cost = _plan_cost_bytes(plan)
        if cost > self.max_bytes:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (plan, cost)
            self._bytes += cost
            while self._bytes > self.max_bytes:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self._bytes -= evicted_cost
                self._evictions += 1
            return True

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (both tiers); returns whether either held it."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._bytes -= entry[1]
        stored = False
        if self.store is not None:
            try:
                stored = self.store.drop(key)
            except sqlite3.Error:
                pass
        return entry is not None or stored

    def invalidate_scope(self, scope: str) -> int:
        """Drop every entry whose key's first component is ``scope``.

        Scopes are how callers partition one shared cache — the service
        uses the dataset name, so replacing a dataset's graph (or
        retraining its model) invalidates exactly its plans, in memory
        *and* in the persistent store (plans for a vanished graph must
        not resurrect on the next restart).  Returns the number of
        entries dropped from whichever tier held more.
        """
        with self._lock:
            doomed = [key for key in self._entries if key and key[0] == scope]
            for key in doomed:
                _, cost = self._entries.pop(key)
                self._bytes -= cost
        stored = 0
        if self.store is not None:
            try:
                stored = self.store.invalidate_scope(scope)
            except sqlite3.Error:
                pass
        return max(len(doomed), stored)

    def clear(self) -> int:
        """Drop every entry (both tiers); returns how many there were."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
        stored = 0
        if self.store is not None:
            try:
                stored = self.store.clear()
            except sqlite3.Error:
                pass
        return max(count, stored)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """A consistent counter snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                plans=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
                store_hits=self._store_hits,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (
            f"PlanCache(plans={s.plans}, bytes={s.bytes:,}/{s.max_bytes:,}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )
