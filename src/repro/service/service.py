"""The serving-grade entry point: one :class:`MatchService`, many clients.

Where :class:`~repro.api.matcher.Matcher` makes one *data graph*
prepare-once/query-many, ``MatchService`` makes the *deployment* so:
one long-lived object fronts a multi-dataset catalog, a shared
canonical-fingerprint plan cache, and a thread pool for concurrent
request execution.  Clients speak :class:`~repro.service.requests.
MatchRequest` / :class:`~repro.service.requests.MatchResponse` — plain
data, JSON-serializable, routable.

Canonicalization at the boundary
--------------------------------
Every incoming query is canonically relabeled
(:func:`repro.graphs.canonical.canonical_form`) before planning, and
every outgoing order/embedding is translated back into the client's
vertex numbering.  Two consequences:

* all members of one isomorphism class collapse onto one plan-cache
  entry — the recurring-workload case NeuSO-style systems amortize —
  and a cache hit skips Phases (1)–(2) entirely, reusing the live
  candidate arrays and per-edge index of the cached plan;
* results are *deterministic per isomorphism class*: warm and cold
  paths run the identical canonical plan, so cache hits are
  bit-identical to cold planning on match sequences and ``#enum``
  (pinned by property test over generated isomorphs).

Per-request ``match_limit`` / ``time_limit`` / orderer overrides never
fork the cached plan — limits apply through a derived enumerator at
execution time, and orderer overrides cache under their own key.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import CanonicalizationError, ReproError
from repro.graphs.canonical import CanonicalForm, canonical_form
from repro.graphs.graph import Graph
from repro.matching.enumeration import Enumerator, MatchStream
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheStats, PlanCache
from repro.service.catalog import DatasetCatalog
from repro.service.requests import UNSET, MatchRequest, MatchResponse

__all__ = ["LatencyRing", "MatchService", "ServiceStats", "STATS_SCHEMA_VERSION"]

#: Default latency ring-buffer size for the percentile snapshot.
LATENCY_WINDOW = 8192

#: Version of the :meth:`ServiceStats.to_dict` / ``/stats`` payload.
#: Bumped whenever keys change shape or meaning, so consumers (the
#: load harness's stats-delta attribution, dashboards) can refuse
#: payloads they don't understand instead of mis-parsing them.
#: v2: added ``schema`` itself and the ``scheduler`` block.
#: v3: the ``scheduler`` block grew the execution tier surface —
#: ``executor``, ``recovered``, ``calibration`` (observed-cost
#: feedback), ``procpool`` and ``durable`` liveness snapshots.
STATS_SCHEMA_VERSION = 3


class LatencyRing:
    """Fixed-capacity ring over the most recent request latencies.

    A long-lived server must not grow per-request state without bound,
    so percentile tracking keeps exactly the last ``capacity`` samples —
    the buffer is capped, appends past it overwrite the oldest sample in
    place, and the total observation count keeps counting.  Not a
    sampling reservoir on purpose: latency percentiles should reflect
    *recent* traffic, and a sliding window is also the cheaper invariant
    to test (``tests/server/test_latency_ring.py`` pins the bound).

    Examples
    --------
    >>> ring = LatencyRing(capacity=4)
    >>> for v in [5.0, 1.0, 2.0, 3.0, 4.0]:
    ...     ring.append(v)
    >>> ring.count, len(ring)            # 5 seen, 4 retained
    (5, 4)
    >>> sorted(ring.window())            # the 5.0 was overwritten
    [1.0, 2.0, 3.0, 4.0]
    """

    __slots__ = ("_buffer", "_capacity", "_next", "_count")

    def __init__(self, capacity: int = LATENCY_WINDOW):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._buffer: list[float] = []
        self._next = 0
        self._count = 0

    def append(self, value: float) -> None:
        """Record one sample, evicting the oldest once at capacity."""
        if len(self._buffer) < self._capacity:
            self._buffer.append(float(value))
        else:
            self._buffer[self._next] = float(value)
        self._next = (self._next + 1) % self._capacity
        self._count += 1

    def window(self) -> list[float]:
        """A copy of the retained samples (unordered)."""
        return list(self._buffer)

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._capacity

    @property
    def count(self) -> int:
        """Total samples ever appended (retained or evicted)."""
        return self._count

    def __len__(self) -> int:
        return len(self._buffer)


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time operational snapshot of a :class:`MatchService`.

    Per-phase totals count work actually performed: planning time is
    added only on cache misses (hits re-use, they don't re-pay), while
    enumeration time accrues on every served request.  Latency
    percentiles are computed over the bounded :class:`LatencyRing`
    sliding window (the most recent requests; default
    :data:`LATENCY_WINDOW`).  ``shard_enum_time_s`` attributes
    enumeration seconds per shard, keyed ``"<dataset>/<shard_id>"`` —
    populated only by sharded datasets, and summing to more than the
    wall clock when the shard pool overlaps shards.  ``scheduler``
    carries the :class:`~repro.service.scheduler.SchedulerStats`
    payload (queue depth, admissions/rejections/expiries/degrades,
    per-tenant accounting) when a scheduler is attached; ``schema`` is
    :data:`STATS_SCHEMA_VERSION`, so payload consumers can refuse
    shapes they don't understand.
    """

    requests: int
    errors: int
    cache: CacheStats
    filter_time_s: float
    order_time_s: float
    enum_time_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float = 0.0
    shard_enum_time_s: dict = field(default_factory=dict)
    scheduler: dict | None = None
    schema: int = STATS_SCHEMA_VERSION

    @property
    def cache_hit_rate(self) -> float:
        """Plan-cache hit rate over every lookup so far."""
        return self.cache.hit_rate

    def to_dict(self) -> dict:
        """JSON-compatible payload (the CLI's ``--stats`` output)."""
        return {
            "schema": int(self.schema),
            "requests": int(self.requests),
            "errors": int(self.errors),
            "cache": self.cache.to_dict(),
            "filter_time_s": float(self.filter_time_s),
            "order_time_s": float(self.order_time_s),
            "enum_time_s": float(self.enum_time_s),
            "latency_p50_s": float(self.latency_p50_s),
            "latency_p95_s": float(self.latency_p95_s),
            "latency_p99_s": float(self.latency_p99_s),
            "shard_enum_time_s": {
                key: float(value)
                for key, value in sorted(self.shard_enum_time_s.items())
            },
            "scheduler": dict(self.scheduler) if self.scheduler is not None else None,
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


class MatchService:
    """Concurrent multi-dataset subgraph-matching service.

    Parameters
    ----------
    catalog:
        What to serve: ``None`` (every dataset in the
        :mod:`repro.datasets` registry), a list of registry names, a
        mapping from name to graph/entry/overrides, or a prebuilt
        :class:`DatasetCatalog`.
    cache_bytes:
        Plan-cache byte budget (ignored when a prebuilt catalog already
        carries a cache).
    max_workers:
        Default thread-pool width for :meth:`submit_many`.
    plan_store:
        Optional persistent second cache tier: a
        :class:`~repro.server.store.PlanStore`, or a path handed to its
        constructor.  Cached plans are written through durably and a
        fresh process consults the store on memory misses, so warm
        state survives restarts and is shareable across workers.
    latency_window:
        Capacity of the bounded :class:`LatencyRing` percentile window.
    scheduler:
        Optional cost-aware admission tier
        (:mod:`repro.service.scheduler`): ``True`` for the default
        :class:`~repro.service.scheduler.SchedulerConfig`, or a config
        instance.  When attached, :meth:`submit_scheduled` admits
        through the bounded priority queue and :meth:`submit_many`
        routes through it; :meth:`submit` stays the direct path (and is
        what the scheduler's workers themselves execute through).

    Examples
    --------
    >>> from repro.service import MatchService, MatchRequest
    >>> from repro.graphs import erdos_renyi, extract_query
    >>> import numpy as np
    >>> data = erdos_renyi(150, 450, 3, seed=11)
    >>> service = MatchService(catalog={"tiny": data})
    >>> query = extract_query(data, 4, np.random.default_rng(2))
    >>> cold = service.submit(MatchRequest("tiny", query))
    >>> warm = service.submit(MatchRequest("tiny", query))
    >>> warm.cache_hit and not cold.cache_hit
    True
    >>> (warm.num_matches, warm.num_enumerations) == (
    ...     cold.num_matches, cold.num_enumerations)
    True
    """

    def __init__(
        self,
        catalog=None,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_workers: int | None = None,
        plan_store=None,
        latency_window: int = LATENCY_WINDOW,
        scheduler=None,
    ):
        if plan_store is not None and not hasattr(plan_store, "get"):
            # A path was passed; the import is local so the core service
            # stays importable without the server package in play.
            from repro.server.store import PlanStore

            plan_store = PlanStore(plan_store)
        if isinstance(catalog, DatasetCatalog):
            self.catalog = catalog
            if self.catalog.plan_cache is None:
                # attach (not assign): matchers the catalog already
                # constructed must start caching too.
                self.catalog.attach_plan_cache(
                    PlanCache(cache_bytes, store=plan_store)
                )
            elif plan_store is not None:
                self.catalog.plan_cache.attach_store(plan_store)
        else:
            self.catalog = DatasetCatalog(
                catalog, plan_cache=PlanCache(cache_bytes, store=plan_store)
            )
        self.plan_cache = self.catalog.plan_cache
        self.plan_store = (
            self.plan_cache.store if self.plan_cache is not None else None
        )
        self.max_workers = max_workers if max_workers is not None else 4
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._filter_time = 0.0
        self._order_time = 0.0
        self._enum_time = 0.0
        self._shard_enum_time: dict[str, float] = {}
        self._latencies = LatencyRing(latency_window)
        self._shard_executor: ThreadPoolExecutor | None = None
        self.scheduler = None
        self.procpool = None
        if scheduler is not None and scheduler is not False:
            # Local import: the scheduler module imports from
            # repro.service.requests, and keeping the dependency edge
            # one-way at import time avoids a cycle.
            from repro.service.scheduler import CostAwareScheduler, SchedulerConfig

            config = SchedulerConfig() if scheduler is True else scheduler
            if config.executor == "process":
                # The pool must exist before the scheduler: its workers
                # dispatch to it from their first pop.  Workers share
                # this service's plan-store file (when it is a real
                # file) so Phase (1) rebuilds once per worker and the
                # recorded order is reused — the bit-identity contract.
                from repro.procpool import ProcessPool, catalog_spec

                store_path = getattr(self.plan_store, "path", None)
                if store_path == ":memory:":
                    store_path = None  # private to this process
                self.procpool = ProcessPool(
                    catalog_spec(self.catalog, plan_store_path=store_path),
                    workers=config.process_workers,
                )
            self.scheduler = CostAwareScheduler(self, config)

    def _shard_pool(self) -> ThreadPoolExecutor:
        """The dedicated pool sharded plans fan per-shard work through.

        Separate from ``submit_many``'s per-batch request pools on
        purpose: shard sub-tasks submitted back into the request pool
        could deadlock behind the very requests waiting on them.  Built
        lazily so unsharded deployments never pay for it; double-checked
        under the stats lock.
        """
        if self._shard_executor is None:
            with self._lock:
                if self._shard_executor is None:
                    self._shard_executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-shard",
                    )
        return self._shard_executor

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _derived_enumerator(
        self, base: Enumerator, request: MatchRequest, record: bool
    ) -> Enumerator | None:
        """Per-request engine honouring the request's overrides.

        Returns ``None`` when the dataset's configured enumerator
        already fits — the common case, which keeps cache-hit requests
        allocation-free on the planning side.  A backend override
        (``request.enumerator``) is safe on shared cached plans because
        every backend is bit-identical on matches and ``#enum`` — only
        the latency/memory profile changes.
        """
        match_limit = (
            base.match_limit if request.match_limit is UNSET else request.match_limit
        )
        time_limit = (
            base.time_limit if request.time_limit is UNSET else request.time_limit
        )
        strategy = (
            base.strategy if request.enumerator is None else request.enumerator
        )
        if (
            match_limit == base.match_limit
            and time_limit == base.time_limit
            and record == base.record_matches
            and strategy == base.strategy
        ):
            return None
        return Enumerator(
            match_limit=match_limit,
            time_limit=time_limit,
            record_matches=record,
            check_every=base.check_every,
            use_candidate_space=base.use_candidate_space,
            strategy=strategy,
        )

    @staticmethod
    def _plan_canonical(matcher, query: Graph):
        """Canonicalize and plan; ``(cform, plan, cache_hit)``.

        The budget-exceeded fallback serves the query as-is under an
        identity mapping with caching off — correct results, no cache
        entry, empty fingerprint.
        """
        try:
            cform = canonical_form(query)
        except CanonicalizationError:
            identity = tuple(range(query.num_vertices))
            cform = CanonicalForm(
                graph=query, order=identity, mapping=identity, fingerprint=""
            )
            return cform, matcher._plan_cold(query), False
        plan, cache_hit = matcher.plan_fingerprinted(cform.graph, cform.fingerprint)
        return cform, plan, cache_hit

    def submit(self, request: MatchRequest) -> MatchResponse:
        """Serve one request; raises :class:`~repro.errors.ReproError`
        subclasses on invalid requests (unknown dataset/orderer, bad
        limits).

        The full path: resolve the dataset's matcher, canonicalize the
        query, plan through the shared cache (hits skip Phases (1)–(2)),
        execute under the request's limits, and translate order and
        embeddings back into the client's vertex numbering.

        Queries are canonicalized exactly, which bounds them at
        :data:`~repro.graphs.canonical.MAX_CANONICAL_VERTICES` vertices
        — far above any Table III workload; larger graphs are data
        graphs and belong in the catalog, not in a request.  A query so
        symmetric that the canonical labeling exhausts its search budget
        is served *uncached* instead (bounded fallback, empty
        fingerprint on the response) — a hostile query degrades its own
        caching, never a worker thread.
        """
        t_start = time.perf_counter()
        matcher = self.catalog.matcher(request.dataset, request.orderer)
        cform, plan, cache_hit = self._plan_canonical(matcher, request.query)

        record = request.record_matches or request.stream
        engine = self._derived_enumerator(matcher.enumerator, request, record)
        shard_outcomes = None
        if request.stream:
            stream = matcher.stream_plan(plan, enumerator=engine)
            matches = tuple(cform.to_original(m) for m in stream)
            outcome = stream.result()
            enum_time = outcome.elapsed
        else:
            result = matcher.execute(
                plan,
                enumerator=engine,
                executor=self._shard_pool() if plan.sharded else None,
            )
            outcome = result.enumeration
            enum_time = outcome.elapsed
            matches = (
                tuple(cform.to_original(m) for m in outcome.matches)
                if record
                else ()
            )
            shard_outcomes = result.shards
        total_time = time.perf_counter() - t_start
        with self._lock:
            self._requests += 1
            if not cache_hit:
                self._filter_time += plan.filter_time
                self._order_time += plan.order_time
            self._enum_time += enum_time
            if shard_outcomes:
                for shard_outcome in shard_outcomes:
                    key = f"{request.dataset}/{shard_outcome.shard_id}"
                    self._shard_enum_time[key] = (
                        self._shard_enum_time.get(key, 0.0)
                        + shard_outcome.elapsed
                    )
            self._latencies.append(total_time)
        return MatchResponse(
            dataset=request.dataset,
            # cform's fingerprint, not the plan's lazy property: on the
            # budget-exceeded fallback the latter would re-run the
            # failed canonicalization.
            fingerprint=cform.fingerprint,
            cache_hit=cache_hit,
            order=tuple(cform.order[u] for u in plan.order),
            num_matches=outcome.num_matches,
            num_enumerations=outcome.num_enumerations,
            timed_out=outcome.timed_out,
            limit_reached=outcome.limit_reached,
            matches=matches,
            filter_time=plan.filter_time,
            order_time=plan.order_time,
            enum_time=enum_time,
            total_time=total_time,
            tag=request.tag,
        )

    def _record_error(self) -> None:
        """Count one captured request failure (stats only)."""
        with self._lock:
            self._errors += 1

    def _record_remote(self, response: MatchResponse) -> None:
        """Meter one response served by a worker *process*.

        The worker's private service counted the request in its own
        stats, which die with it — the parent re-records the response
        here with the same semantics as :meth:`submit`: planning time
        only when the worker actually planned (its cache missed),
        enumeration time and latency always.
        """
        with self._lock:
            self._requests += 1
            if not response.cache_hit:
                self._filter_time += response.filter_time
                self._order_time += response.order_time
            self._enum_time += response.enum_time
            self._latencies.append(response.total_time)

    def submit_scheduled(self, request: MatchRequest):
        """Admit one request through the cost-aware scheduler.

        Returns a :class:`concurrent.futures.Future` resolving to the
        served :class:`MatchResponse` (with ``queue_time_s`` /
        ``attempts`` / ``degraded`` filled in) or raising the failure.
        Admission itself raises synchronously: a structured
        :class:`~repro.service.requests.ServiceError` with
        ``code="rejected"`` on backpressure (full queue, exhausted
        tenant budget), validation errors for unknown names.  Requires
        a scheduler (``MatchService(..., scheduler=...)``).

        Scheduling changes *when* the request runs, never *what it
        returns*: execution goes through the unmodified :meth:`submit`
        path, so results are bit-identical to a direct call.
        """
        if self.scheduler is None:
            raise ReproError(
                "no scheduler attached; construct the service with "
                "MatchService(..., scheduler=SchedulerConfig(...))"
            )
        return self.scheduler.submit(request)

    def submit_many(
        self,
        requests: Iterable[MatchRequest],
        max_workers: int | None = None,
        on_error: str = "capture",
    ) -> list[MatchResponse]:
        """Serve a batch concurrently; responses in request order.

        Without a scheduler this fans out over a thread pool hammering
        the shared (documented thread-safe) matchers; with one attached
        (``MatchService(..., scheduler=...)``) every request is
        admitted through the cost-aware priority queue instead, so a
        batch inherits deadline/budget enforcement and cheap-first
        ordering.  Either way results are bit-identical to serial
        :meth:`submit` calls on the accepted requests.
        ``on_error="capture"`` (default) turns a request's
        :class:`~repro.errors.ReproError` — including scheduler
        rejections and deadline expiries — into an error response
        carrying the stable code, so one bad request cannot sink a
        batch; ``on_error="raise"`` propagates the first failure.
        """
        if on_error not in ("capture", "raise"):
            raise ReproError(
                f"on_error must be 'capture' or 'raise', got {on_error!r}"
            )
        requests = list(requests)
        if not requests:
            return []
        if self.scheduler is not None:
            return self._submit_many_scheduled(requests, on_error)
        workers = max_workers if max_workers is not None else self.max_workers
        workers = max(1, min(workers, len(requests)))

        def serve(request: MatchRequest) -> MatchResponse:
            try:
                return self.submit(request)
            except ReproError as exc:
                if on_error == "raise":
                    raise
                self._record_error()
                return MatchResponse.failure(request, exc)

        if workers == 1:
            return [serve(request) for request in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(serve, requests))

    def _submit_many_scheduled(
        self, requests: list[MatchRequest], on_error: str
    ) -> list[MatchResponse]:
        """Batch path through the scheduler; responses in request order."""
        slots: list = []
        for request in requests:
            try:
                slots.append(self.scheduler.submit(request))
            except ReproError as exc:
                if on_error == "raise":
                    raise
                self._record_error()
                slots.append(MatchResponse.failure(request, exc))
        responses: list[MatchResponse] = []
        for request, slot in zip(requests, slots):
            if isinstance(slot, MatchResponse):
                responses.append(slot)
                continue
            try:
                responses.append(slot.result())
            except ReproError as exc:
                if on_error == "raise":
                    raise
                self._record_error()
                responses.append(MatchResponse.failure(request, exc))
        return responses

    def stream(
        self,
        dataset: str,
        query: Graph,
        limit: int | None = None,
        orderer: str | None = None,
    ):
        """Lazily yield embeddings of ``query``, client-numbered.

        Plans through the cache like :meth:`submit` and drives the
        suspendable streaming engine, translating each embedding back
        through the canonical mapping as it is pulled — first-``k``
        consumers never pay for the ``k+1``-th match.  The request is
        metered like :meth:`submit`: counted immediately, with
        enumeration time and latency recorded when the stream finishes
        (exhausted or closed).
        """
        t_start = time.perf_counter()
        matcher = self.catalog.matcher(dataset, orderer)
        cform, plan, cache_hit = self._plan_canonical(matcher, query)
        stream = matcher.stream_plan(plan, limit=limit)
        with self._lock:
            self._requests += 1
            if not cache_hit:
                self._filter_time += plan.filter_time
                self._order_time += plan.order_time

        def finalize(outcome) -> None:
            with self._lock:
                self._enum_time += outcome.elapsed
                self._latencies.append(time.perf_counter() - t_start)

        return _RemappedStream(stream, cform, finalize)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def invalidate(self, dataset: str | None = None) -> int:
        """Explicitly drop cached plans: one dataset's, or all.

        Call when the world behind a dataset name changes out of band
        (graph rebuilt, model retrained).  Returns the number of plans
        dropped.  :meth:`DatasetCatalog.add`/``remove`` invalidate
        their dataset automatically.
        """
        if self.plan_cache is None:
            return 0
        if dataset is None:
            return self.plan_cache.clear()
        self.catalog.entry(dataset)  # raises registry-style on unknown names
        return self.plan_cache.invalidate_scope(dataset)

    def stats(self) -> ServiceStats:
        """A consistent :class:`ServiceStats` snapshot."""
        cache = (
            self.plan_cache.stats()
            if self.plan_cache is not None
            else CacheStats(0, 0, 0, 0, 0, 0)
        )
        scheduler_stats = (
            self.scheduler.stats().to_dict() if self.scheduler is not None else None
        )
        with self._lock:
            window = sorted(self._latencies.window())
            return ServiceStats(
                requests=self._requests,
                errors=self._errors,
                cache=cache,
                filter_time_s=self._filter_time,
                order_time_s=self._order_time,
                enum_time_s=self._enum_time,
                latency_p50_s=_percentile(window, 0.50),
                latency_p95_s=_percentile(window, 0.95),
                latency_p99_s=_percentile(window, 0.99),
                shard_enum_time_s=dict(self._shard_enum_time),
                scheduler=scheduler_stats,
            )

    def health(self) -> dict:
        """Liveness snapshot — what ``GET /healthz`` serves.

        ``status`` is ``"ok"`` unless the process pool is unrecoverably
        down (``"down"``, mapped to HTTP 503).  ``executor`` reports the
        execution tier: its kind (``"inline"`` without a scheduler,
        else the scheduler's executor), scheduler worker count and
        queue depth, and — under ``executor="process"`` — the pool's
        worker liveness (alive/dead/busy/respawns).
        """
        executor: dict = {
            "kind": "inline",
            "workers": 0,
            "queue_depth": 0,
            "queue_capacity": 0,
            "process_pool": None,
        }
        status = "ok"
        if self.scheduler is not None:
            executor["kind"] = self.scheduler.config.executor
            executor["workers"] = self.scheduler.config.workers
            executor["queue_depth"] = len(self.scheduler._queue)
            executor["queue_capacity"] = self.scheduler._queue.capacity
        if self.procpool is not None:
            pool_health = self.procpool.health()
            executor["process_pool"] = pool_health
            if pool_health["down"]:
                status = "down"
        return {
            "status": status,
            "datasets": list(self.catalog.names()),
            "executor": executor,
        }

    def close(self) -> None:
        """Release background resources (scheduler, process pool,
        shard pool).

        Queued scheduled work drains gracefully first (the scheduler
        shuts down before the process pool — its workers may still be
        blocked on pool futures).  Idempotent; the service remains
        usable for direct :meth:`submit` calls afterwards, but
        scheduled admission is permanently closed.
        """
        if self.scheduler is not None:
            self.scheduler.shutdown()
        if self.procpool is not None:
            self.procpool.shutdown()
        with self._lock:
            executor, self._shard_executor = self._shard_executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MatchService(datasets={len(self.catalog)}, "
            f"cached_plans={len(self.plan_cache) if self.plan_cache else 0})"
        )


class _RemappedStream:
    """A :class:`MatchStream` view yielding client-numbered embeddings.

    Wraps the canonical-query stream, translating each pulled embedding
    through the request's canonical mapping while proxying the
    underlying live counters; the service's ``finalize`` callback fires
    exactly once when the stream finishes, so streamed traffic shows up
    in :class:`ServiceStats` like any other request.
    """

    def __init__(self, stream: MatchStream, cform, finalize=None) -> None:
        self._stream = stream
        self._cform = cform
        self._finalize = finalize

    def _finish(self) -> None:
        if self._finalize is not None:
            callback, self._finalize = self._finalize, None
            callback(self._stream.result())

    def __iter__(self):
        return self

    def __next__(self):
        try:
            match = next(self._stream)
        except StopIteration:
            self._finish()
            raise
        if self._stream.exhausted:
            # The limit fired on this pull: the search is over.
            self._finish()
        return self._cform.to_original(match)

    def close(self) -> None:
        """Stop the underlying search early."""
        self._stream.close()
        self._finish()

    def result(self):
        """The underlying stream's batch-shaped outcome."""
        return self._stream.result()

    @property
    def num_matches(self) -> int:
        """Embeddings yielded so far."""
        return self._stream.num_matches

    @property
    def num_enumerations(self) -> int:
        """``#enum`` explored up to the last pull."""
        return self._stream.num_enumerations

    @property
    def timed_out(self) -> bool:
        """Whether the wall-clock deadline fired during the search."""
        return self._stream.timed_out

    @property
    def limit_reached(self) -> bool:
        """Whether the match limit stopped the stream."""
        return self._stream.limit_reached

    @property
    def exhausted(self) -> bool:
        """Whether the stream is finished (by any cause)."""
        return self._stream.exhausted

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds from stream creation to the last pull."""
        return self._stream.elapsed
