"""Structured request/response payloads for :class:`MatchService`.

The service boundary speaks *data*, not method calls: a
:class:`MatchRequest` names a dataset, carries a query graph, and may
override the per-request execution envelope (match limit, time limit,
orderer, streaming); a :class:`MatchResponse` carries everything a
client needs — counts, the matching order and any recorded embeddings
expressed in the *client's* vertex numbering (the service canonicalizes
queries internally), per-phase timings, the plan fingerprint and
whether the plan cache served it.  Both round-trip through
JSON-compatible dicts, which is what the ``repro-serve`` JSONL CLI
reads and writes.

``UNSET`` distinguishes "use the dataset's configured default" from an
explicit ``None`` (which, for the limits, means *unlimited*) — a
distinction a plain ``None`` default could not express.

This module is also the single home of the service's **error
envelope**: every failure the serving stack reports — an exception
raised from :meth:`MatchService.submit`, a captured error line in the
``repro-serve`` JSONL output, a structured JSON error from the HTTP
tier, or a scheduler rejection — serializes to the same
``{"error": ..., "code": ...}`` shape, with the stable ``code``
vocabulary and its HTTP status mapping defined once in
:data:`ERROR_HTTP_STATUS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api.plan import graph_from_payload, graph_payload
from repro.errors import ReproError
from repro.graphs.graph import Graph

__all__ = [
    "ERROR_HTTP_STATUS",
    "UNSET",
    "MatchRequest",
    "MatchResponse",
    "ServiceError",
    "error_code_for",
    "error_payload",
    "http_status_for",
]


class _Unset:
    """Sentinel type for "not specified" (vs an explicit ``None``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: "Use the dataset's configured default" marker for request overrides.
UNSET = _Unset()


# ----------------------------------------------------------------------
# The one error envelope
# ----------------------------------------------------------------------

#: Stable error-code vocabulary → HTTP status.  This table is the single
#: source of truth for status mapping: the HTTP tier, the JSONL CLI and
#: the scheduler all derive their error surfaces from it.
ERROR_HTTP_STATUS: dict[str, int] = {
    "validation": 400,  # malformed / unknown-name requests
    "rejected": 429,  # admission backpressure (queue or budget full)
    "deadline_expired": 504,  # expired while queued, never ran
    "timeout": 504,  # ran, hit its time limit, degrade exhausted
    "internal": 500,  # anything else
}


def http_status_for(code: str | None) -> int:
    """HTTP status for an error ``code`` (500 for unknown/missing)."""
    return ERROR_HTTP_STATUS.get(code or "internal", 500)


class ServiceError(ReproError):
    """A service-level failure carrying a stable machine-readable code.

    The serving stack raises (or captures) these for conditions that are
    *operational* rather than malformed input: admission rejection,
    queue-deadline expiry.  ``retry_after_s``, when set, surfaces as the
    HTTP ``Retry-After`` header on 429 responses.

    Examples
    --------
    >>> exc = ServiceError("queue full", code="rejected", retry_after_s=1.0)
    >>> exc.code, exc.retry_after_s
    ('rejected', 1.0)
    >>> http_status_for(exc.code)
    429
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "internal",
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        if code not in ERROR_HTTP_STATUS:
            raise ValueError(
                f"unknown error code {code!r}; expected one of "
                f"{sorted(ERROR_HTTP_STATUS)}"
            )
        self.code = code
        self.retry_after_s = retry_after_s


def error_code_for(error: BaseException) -> str:
    """The stable code an exception maps to.

    :class:`ServiceError` carries its own; any other
    :class:`~repro.errors.ReproError` is an invalid request
    (``validation``); everything else is ``internal``.
    """
    if isinstance(error, ServiceError):
        return error.code
    if isinstance(error, ReproError):
        return "validation"
    return "internal"


def error_payload(error: BaseException | str, *, code: str | None = None) -> dict:
    """The one serializable error envelope.

    Every error surface in the stack (HTTP bodies, JSONL error lines,
    captured batch failures) is this dict: ``error`` (human message),
    ``code`` (stable, from :data:`ERROR_HTTP_STATUS`'s vocabulary) and,
    when the failure is retryable backpressure, ``retry_after_s``.

    >>> error_payload(ServiceError("full", code="rejected", retry_after_s=2))
    {'error': 'full', 'code': 'rejected', 'retry_after_s': 2.0}
    """
    if isinstance(error, BaseException):
        payload = {"error": str(error), "code": code or error_code_for(error)}
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            payload["retry_after_s"] = float(retry_after)
        return payload
    return {"error": str(error), "code": code or "internal"}


@dataclass(frozen=True)
class MatchRequest:
    """One unit of work for :meth:`MatchService.submit`.

    Attributes
    ----------
    dataset:
        Catalog name of the data graph to match against.
    query:
        The query graph, in the client's own vertex numbering.
    match_limit / time_limit:
        Per-request execution envelope; :data:`UNSET` inherits the
        dataset's configured defaults, ``None`` means unlimited.
    orderer:
        Registry name overriding the dataset's configured orderer for
        this request (plans cache separately per orderer).
    enumerator:
        Enumeration-backend name overriding the dataset's configured
        engine for this request (``"iterative"``, ``"recursive"`` or
        ``"vectorized"``).  Backends are bit-identical on matches and
        ``#enum``, so the override changes only the latency/memory
        profile — plans are shared across backends.
    record_matches:
        Materialize embeddings into :attr:`MatchResponse.matches`.
    stream:
        Enumerate through the lazy streaming engine instead of the
        batch driver — same matches, same ``#enum``, but the search
        never materializes more than ``match_limit`` embeddings at
        once; implies ``record_matches``.
    tag:
        Opaque client correlation id, echoed on the response.
    tenant:
        Accounting principal for the scheduler's per-tenant concurrency
        and cost budgets; ``None`` bills the default tenant.  Ignored
        (cost-free) on the unscheduled direct path.
    priority:
        Scheduling priority class; higher runs earlier.  Within one
        class the queue orders by (deadline, estimated plan cost).
    deadline_s:
        Relative queueing deadline in seconds: if the request is still
        queued this long after admission it fails fast with
        ``deadline_expired`` instead of occupying a worker.  ``None``
        means the scheduler's configured default (or no deadline).  The
        deadline never caps *execution* — a request that started keeps
        its exact ``time_limit`` envelope, preserving bit-identity.
    """

    dataset: str
    query: Graph
    match_limit: Any = UNSET
    time_limit: Any = UNSET
    orderer: str | None = None
    enumerator: str | None = None
    record_matches: bool = False
    stream: bool = False
    tag: str | None = None
    tenant: str | None = None
    priority: int = 0
    deadline_s: float | None = None

    def to_dict(self) -> dict:
        """JSON-compatible payload (the JSONL request-file line)."""
        payload: dict = {"dataset": self.dataset, "query": graph_payload(self.query)}
        if self.match_limit is not UNSET:
            payload["match_limit"] = self.match_limit
        if self.time_limit is not UNSET:
            payload["time_limit"] = self.time_limit
        if self.orderer is not None:
            payload["orderer"] = self.orderer
        if self.enumerator is not None:
            payload["enumerator"] = self.enumerator
        if self.record_matches:
            payload["record_matches"] = True
        if self.stream:
            payload["stream"] = True
        if self.tag is not None:
            payload["tag"] = self.tag
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.priority != 0:
            payload["priority"] = int(self.priority)
        if self.deadline_s is not None:
            payload["deadline_s"] = float(self.deadline_s)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MatchRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Absent limit keys mean :data:`UNSET` (dataset defaults); an
        explicit JSON ``null`` means unlimited, mirroring ``None``.
        Absent scheduling keys take the cost-free defaults, so payloads
        written by pre-scheduler clients parse unchanged.
        """
        try:
            deadline_s = payload.get("deadline_s")
            return cls(
                dataset=payload["dataset"],
                query=graph_from_payload(payload["query"]),
                match_limit=payload.get("match_limit", UNSET),
                time_limit=payload.get("time_limit", UNSET),
                orderer=payload.get("orderer"),
                enumerator=payload.get("enumerator"),
                record_matches=bool(payload.get("record_matches", False)),
                stream=bool(payload.get("stream", False)),
                tag=payload.get("tag"),
                tenant=payload.get("tenant"),
                priority=int(payload.get("priority", 0)),
                deadline_s=None if deadline_s is None else float(deadline_s),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed match-request payload: {exc}") from exc


@dataclass(frozen=True)
class MatchResponse:
    """Outcome of one request, in the client's vertex numbering.

    Attributes
    ----------
    dataset / tag:
        Echoed from the request.
    fingerprint:
        Canonical isomorphism-class fingerprint of the query — the
        plan-cache key, stable across processes.
    cache_hit:
        Whether the plan cache served Phases (1)–(2).
    order:
        The matching order as a sequence of the *client's* query vertex
        ids (positions in the order, translated back through the
        canonical mapping).
    num_matches / num_enumerations / timed_out / limit_reached:
        The enumeration outcome (Def. II.5–II.6 semantics).
    matches:
        Embeddings indexed by the client's query vertex ids; populated
        only when the request asked for matches.
    filter_time / order_time:
        Planning cost *recorded on the plan* — on a cache hit this is
        the historical, once-paid cost, not new work.
    enum_time / total_time:
        Phase (3) wall clock, and end-to-end request latency.
    error / error_code:
        Failure description when the request could not be served
        (capture mode of ``submit_many``, scheduler rejections and
        expiries); every other payload field is zeroed.  ``error_code``
        is the stable code from :data:`ERROR_HTTP_STATUS`'s vocabulary.
    queue_time_s / attempts / degraded:
        Scheduling surface: seconds spent queued before a worker picked
        the request up (0.0 on the direct path), how many execution
        attempts ran, and whether the served result came from the
        degraded retry envelope (tighter limits / cheaper orderer)
        after the first attempt timed out.
    executor:
        Which execution tier served a *scheduled* request ("thread" or
        "process"); ``None`` — kept off the wire — on the direct path.
        Purely diagnostic: results are bit-identical across tiers.
    """

    dataset: str
    fingerprint: str
    cache_hit: bool
    order: tuple[int, ...]
    num_matches: int
    num_enumerations: int
    timed_out: bool
    limit_reached: bool
    matches: tuple[tuple[int, ...], ...]
    filter_time: float
    order_time: float
    enum_time: float
    total_time: float
    tag: str | None = None
    error: str | None = None
    error_code: str | None = None
    queue_time_s: float = 0.0
    attempts: int = 1
    degraded: bool = False
    executor: str | None = None

    @classmethod
    def failure(
        cls,
        request: MatchRequest,
        error: BaseException | str,
        *,
        code: str | None = None,
    ) -> "MatchResponse":
        """An error response echoing the request's routing fields.

        ``error`` may be the exception itself — preferred, because the
        stable :attr:`error_code` is then derived through
        :func:`error_code_for` — or a bare message with an explicit
        ``code``.
        """
        if isinstance(error, BaseException):
            resolved = code or error_code_for(error)
            message = str(error)
        else:
            resolved = code or "internal"
            message = str(error)
        return cls(
            dataset=request.dataset,
            fingerprint="",
            cache_hit=False,
            order=(),
            num_matches=0,
            num_enumerations=0,
            timed_out=False,
            limit_reached=False,
            matches=(),
            filter_time=0.0,
            order_time=0.0,
            enum_time=0.0,
            total_time=0.0,
            tag=request.tag,
            error=message,
            error_code=resolved,
        )

    @property
    def ok(self) -> bool:
        """Whether the request was served (no :attr:`error`)."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-compatible payload (the JSONL response line)."""
        payload = {
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "cache_hit": bool(self.cache_hit),
            "order": [int(u) for u in self.order],
            "num_matches": int(self.num_matches),
            "num_enumerations": int(self.num_enumerations),
            "timed_out": bool(self.timed_out),
            "limit_reached": bool(self.limit_reached),
            "matches": [[int(v) for v in m] for m in self.matches],
            "filter_time": float(self.filter_time),
            "order_time": float(self.order_time),
            "enum_time": float(self.enum_time),
            "total_time": float(self.total_time),
            "queue_time_s": float(self.queue_time_s),
            "attempts": int(self.attempts),
            "degraded": bool(self.degraded),
        }
        if self.tag is not None:
            payload["tag"] = self.tag
        if self.error is not None:
            payload["error"] = self.error
        if self.error_code is not None:
            payload["code"] = self.error_code
        if self.executor is not None:
            payload["executor"] = self.executor
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MatchResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        try:
            return cls(
                dataset=payload["dataset"],
                fingerprint=payload["fingerprint"],
                cache_hit=bool(payload["cache_hit"]),
                order=tuple(int(u) for u in payload["order"]),
                num_matches=int(payload["num_matches"]),
                num_enumerations=int(payload["num_enumerations"]),
                timed_out=bool(payload["timed_out"]),
                limit_reached=bool(payload["limit_reached"]),
                matches=tuple(
                    tuple(int(v) for v in m) for m in payload["matches"]
                ),
                filter_time=float(payload["filter_time"]),
                order_time=float(payload["order_time"]),
                enum_time=float(payload["enum_time"]),
                total_time=float(payload["total_time"]),
                tag=payload.get("tag"),
                error=payload.get("error"),
                error_code=payload.get("code"),
                queue_time_s=float(payload.get("queue_time_s", 0.0)),
                attempts=int(payload.get("attempts", 1)),
                degraded=bool(payload.get("degraded", False)),
                executor=payload.get("executor"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed match-response payload: {exc}") from exc
