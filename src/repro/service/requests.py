"""Structured request/response payloads for :class:`MatchService`.

The service boundary speaks *data*, not method calls: a
:class:`MatchRequest` names a dataset, carries a query graph, and may
override the per-request execution envelope (match limit, time limit,
orderer, streaming); a :class:`MatchResponse` carries everything a
client needs — counts, the matching order and any recorded embeddings
expressed in the *client's* vertex numbering (the service canonicalizes
queries internally), per-phase timings, the plan fingerprint and
whether the plan cache served it.  Both round-trip through
JSON-compatible dicts, which is what the ``repro-serve`` JSONL CLI
reads and writes.

``UNSET`` distinguishes "use the dataset's configured default" from an
explicit ``None`` (which, for the limits, means *unlimited*) — a
distinction a plain ``None`` default could not express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api.plan import graph_from_payload, graph_payload
from repro.errors import ReproError
from repro.graphs.graph import Graph

__all__ = ["UNSET", "MatchRequest", "MatchResponse"]


class _Unset:
    """Sentinel type for "not specified" (vs an explicit ``None``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: "Use the dataset's configured default" marker for request overrides.
UNSET = _Unset()


@dataclass(frozen=True)
class MatchRequest:
    """One unit of work for :meth:`MatchService.submit`.

    Attributes
    ----------
    dataset:
        Catalog name of the data graph to match against.
    query:
        The query graph, in the client's own vertex numbering.
    match_limit / time_limit:
        Per-request execution envelope; :data:`UNSET` inherits the
        dataset's configured defaults, ``None`` means unlimited.
    orderer:
        Registry name overriding the dataset's configured orderer for
        this request (plans cache separately per orderer).
    enumerator:
        Enumeration-backend name overriding the dataset's configured
        engine for this request (``"iterative"``, ``"recursive"`` or
        ``"vectorized"``).  Backends are bit-identical on matches and
        ``#enum``, so the override changes only the latency/memory
        profile — plans are shared across backends.
    record_matches:
        Materialize embeddings into :attr:`MatchResponse.matches`.
    stream:
        Enumerate through the lazy streaming engine instead of the
        batch driver — same matches, same ``#enum``, but the search
        never materializes more than ``match_limit`` embeddings at
        once; implies ``record_matches``.
    tag:
        Opaque client correlation id, echoed on the response.
    """

    dataset: str
    query: Graph
    match_limit: Any = UNSET
    time_limit: Any = UNSET
    orderer: str | None = None
    enumerator: str | None = None
    record_matches: bool = False
    stream: bool = False
    tag: str | None = None

    def to_dict(self) -> dict:
        """JSON-compatible payload (the JSONL request-file line)."""
        payload: dict = {"dataset": self.dataset, "query": graph_payload(self.query)}
        if self.match_limit is not UNSET:
            payload["match_limit"] = self.match_limit
        if self.time_limit is not UNSET:
            payload["time_limit"] = self.time_limit
        if self.orderer is not None:
            payload["orderer"] = self.orderer
        if self.enumerator is not None:
            payload["enumerator"] = self.enumerator
        if self.record_matches:
            payload["record_matches"] = True
        if self.stream:
            payload["stream"] = True
        if self.tag is not None:
            payload["tag"] = self.tag
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MatchRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Absent limit keys mean :data:`UNSET` (dataset defaults); an
        explicit JSON ``null`` means unlimited, mirroring ``None``.
        """
        try:
            return cls(
                dataset=payload["dataset"],
                query=graph_from_payload(payload["query"]),
                match_limit=payload.get("match_limit", UNSET),
                time_limit=payload.get("time_limit", UNSET),
                orderer=payload.get("orderer"),
                enumerator=payload.get("enumerator"),
                record_matches=bool(payload.get("record_matches", False)),
                stream=bool(payload.get("stream", False)),
                tag=payload.get("tag"),
            )
        except (KeyError, TypeError) as exc:
            raise ReproError(f"malformed match-request payload: {exc}") from exc


@dataclass(frozen=True)
class MatchResponse:
    """Outcome of one request, in the client's vertex numbering.

    Attributes
    ----------
    dataset / tag:
        Echoed from the request.
    fingerprint:
        Canonical isomorphism-class fingerprint of the query — the
        plan-cache key, stable across processes.
    cache_hit:
        Whether the plan cache served Phases (1)–(2).
    order:
        The matching order as a sequence of the *client's* query vertex
        ids (positions in the order, translated back through the
        canonical mapping).
    num_matches / num_enumerations / timed_out / limit_reached:
        The enumeration outcome (Def. II.5–II.6 semantics).
    matches:
        Embeddings indexed by the client's query vertex ids; populated
        only when the request asked for matches.
    filter_time / order_time:
        Planning cost *recorded on the plan* — on a cache hit this is
        the historical, once-paid cost, not new work.
    enum_time / total_time:
        Phase (3) wall clock, and end-to-end request latency.
    error:
        Failure description when the request could not be served
        (capture mode of ``submit_many``); every other payload field is
        zeroed.
    """

    dataset: str
    fingerprint: str
    cache_hit: bool
    order: tuple[int, ...]
    num_matches: int
    num_enumerations: int
    timed_out: bool
    limit_reached: bool
    matches: tuple[tuple[int, ...], ...]
    filter_time: float
    order_time: float
    enum_time: float
    total_time: float
    tag: str | None = None
    error: str | None = None

    @classmethod
    def failure(cls, request: MatchRequest, error: str) -> "MatchResponse":
        """An error response echoing the request's routing fields."""
        return cls(
            dataset=request.dataset,
            fingerprint="",
            cache_hit=False,
            order=(),
            num_matches=0,
            num_enumerations=0,
            timed_out=False,
            limit_reached=False,
            matches=(),
            filter_time=0.0,
            order_time=0.0,
            enum_time=0.0,
            total_time=0.0,
            tag=request.tag,
            error=error,
        )

    @property
    def ok(self) -> bool:
        """Whether the request was served (no :attr:`error`)."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-compatible payload (the JSONL response line)."""
        payload = {
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "cache_hit": bool(self.cache_hit),
            "order": [int(u) for u in self.order],
            "num_matches": int(self.num_matches),
            "num_enumerations": int(self.num_enumerations),
            "timed_out": bool(self.timed_out),
            "limit_reached": bool(self.limit_reached),
            "matches": [[int(v) for v in m] for m in self.matches],
            "filter_time": float(self.filter_time),
            "order_time": float(self.order_time),
            "enum_time": float(self.enum_time),
            "total_time": float(self.total_time),
        }
        if self.tag is not None:
            payload["tag"] = self.tag
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MatchResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        try:
            return cls(
                dataset=payload["dataset"],
                fingerprint=payload["fingerprint"],
                cache_hit=bool(payload["cache_hit"]),
                order=tuple(int(u) for u in payload["order"]),
                num_matches=int(payload["num_matches"]),
                num_enumerations=int(payload["num_enumerations"]),
                timed_out=bool(payload["timed_out"]),
                limit_reached=bool(payload["limit_reached"]),
                matches=tuple(
                    tuple(int(v) for v in m) for m in payload["matches"]
                ),
                filter_time=float(payload["filter_time"]),
                order_time=float(payload["order_time"]),
                enum_time=float(payload["enum_time"]),
                total_time=float(payload["total_time"]),
                tag=payload.get("tag"),
                error=payload.get("error"),
            )
        except (KeyError, TypeError) as exc:
            raise ReproError(f"malformed match-response payload: {exc}") from exc
