#!/usr/bin/env python3
"""Quickstart: train RL-QVO on a dataset and match queries with it.

Runs in under a minute: loads the (synthesized) Yeast dataset, trains the
ordering policy on a handful of Q16 queries, and compares the learned
matching order against the RI heuristic through the *prepare-once /
query-many* facade: one :class:`repro.Matcher` per method binds the data
graph (stats, indices, model) at construction, ``plan`` exposes the
inspectable :class:`repro.QueryPlan`, and ``match_many`` answers the
whole evaluation workload against the prepared state.

Usage::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_EPOCHS`` to shrink the training budget (CI smoke).
"""

from __future__ import annotations

import os

from repro import (
    Matcher,
    RLQVOConfig,
    RLQVOTrainer,
    dataset_stats,
    load_dataset,
    query_workload,
)


def main() -> None:
    # 1. Load a data graph and a Q16 query workload (Table III protocol:
    #    half the queries train the policy, half evaluate it).
    data = load_dataset("yeast")
    stats = dataset_stats("yeast")
    workload = query_workload("yeast", size=16, count=12, seed=0)
    print(f"data graph: {data}")
    print(f"workload: {workload.name}, {len(workload.train)} train / "
          f"{len(workload.eval)} eval queries")

    # 2. Train the RL-QVO ordering policy (small epoch budget for a demo;
    #    the paper uses 100 epochs).
    config = RLQVOConfig(
        epochs=int(os.environ.get("REPRO_EXAMPLES_EPOCHS", 20)),
        rollouts_per_query=2,
        hidden_dim=32,
        train_match_limit=2000,
        train_time_limit=1.0,
        seed=0,
    )
    trainer = RLQVOTrainer(data, config, stats=stats)
    history = trainer.train(list(workload.train))
    print(f"trained {len(history.epochs)} epochs "
          f"in {history.total_time:.1f}s; "
          f"final mean return {history.final_mean_return:+.2f}")

    # 3. Prepare one matcher per method: the GQL filter, the orderer and
    #    the shared iterative enumerator are bound once, then reused for
    #    every query (the Hybrid baseline is just orderer="ri").
    matchers = {
        "rl-qvo": Matcher(data, filter="gql", orderer=trainer.make_orderer(),
                          match_limit=10_000, time_limit=5.0, stats=stats),
        "hybrid": Matcher(data, filter="gql", orderer="ri",
                          match_limit=10_000, time_limit=5.0, stats=stats),
    }

    # 4. Plans are inspectable before anything is enumerated.
    sample_plan = matchers["rl-qvo"].plan(workload.eval[0])
    print(f"\nplan for eval query 0: order={list(sample_plan.order)}")
    print(f"  candidate counts={list(sample_plan.candidate_counts)}, "
          f"estimated cost={sample_plan.estimated_cost:.1f}, "
          f"candidate space={sample_plan.candidate_space_bytes / 1024:.1f} kB, "
          f"planned in {sample_plan.build_time * 1e3:.1f} ms")

    # 5. Answer the whole evaluation workload against the prepared state.
    print(f"\n{'query':>5} | {'method':>7} | {'matches':>8} | {'#enum':>8} | time")
    totals = {name: 0 for name in matchers}
    for name, matcher in matchers.items():
        for i, result in enumerate(matcher.match_many(workload.eval)):
            totals[name] += result.num_enumerations
            print(f"{i:>5} | {name:>7} | {result.num_matches:>8} | "
                  f"{result.num_enumerations:>8} | {result.total_time * 1e3:7.1f}ms")

    print("\ntotal enumeration calls (lower is better):")
    for name, total in totals.items():
        print(f"  {name:>7}: {total}")


if __name__ == "__main__":
    main()
