#!/usr/bin/env python3
"""Quickstart: train RL-QVO on a dataset and match queries with it.

Runs in under a minute: loads the (synthesized) Yeast dataset, trains the
ordering policy on a handful of Q8 queries, and compares the learned
matching order against the RI heuristic that the Hybrid baseline uses.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Enumerator,
    GQLFilter,
    MatchingEngine,
    RIOrderer,
    RLQVOConfig,
    RLQVOTrainer,
    dataset_stats,
    load_dataset,
    query_workload,
)


def main() -> None:
    # 1. Load a data graph and a Q16 query workload (Table III protocol:
    #    half the queries train the policy, half evaluate it).
    data = load_dataset("yeast")
    stats = dataset_stats("yeast")
    workload = query_workload("yeast", size=16, count=12, seed=0)
    print(f"data graph: {data}")
    print(f"workload: {workload.name}, {len(workload.train)} train / "
          f"{len(workload.eval)} eval queries")

    # 2. Train the RL-QVO ordering policy (small epoch budget for a demo;
    #    the paper uses 100 epochs).
    config = RLQVOConfig(
        epochs=20,
        rollouts_per_query=2,
        hidden_dim=32,
        train_match_limit=2000,
        train_time_limit=1.0,
        seed=0,
    )
    trainer = RLQVOTrainer(data, config, stats=stats)
    history = trainer.train(list(workload.train))
    print(f"trained {len(history.epochs)} epochs "
          f"in {history.total_time:.1f}s; "
          f"final mean return {history.final_mean_return:+.2f}")

    # 3. Plug the learned orderer into the Hybrid pipeline (GQL filter +
    #    shared enumeration) and compare with the RI ordering.
    enumerator = Enumerator(match_limit=10_000, time_limit=5.0)
    engines = {
        "rl-qvo": MatchingEngine(GQLFilter(), trainer.make_orderer(), enumerator),
        "hybrid": MatchingEngine(GQLFilter(), RIOrderer(), enumerator),
    }
    print(f"\n{'query':>5} | {'method':>7} | {'matches':>8} | {'#enum':>8} | time")
    totals = {name: 0 for name in engines}
    for i, query in enumerate(workload.eval):
        for name, engine in engines.items():
            result = engine.run(query, data, stats)
            totals[name] += result.num_enumerations
            print(f"{i:>5} | {name:>7} | {result.num_matches:>8} | "
                  f"{result.num_enumerations:>8} | {result.total_time * 1e3:7.1f}ms")

    print("\ntotal enumeration calls (lower is better):")
    for name, total in totals.items():
        print(f"  {name:>7}: {total}")


if __name__ == "__main__":
    main()
