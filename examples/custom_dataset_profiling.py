#!/usr/bin/env python3
"""Bring-your-own-graph: register a custom dataset and profile queries.

The paper's pipeline is dataset-agnostic; this example shows the two
extension points a downstream user needs:

1. :func:`repro.datasets.register_graph_file` — plug any labeled graph in
   the ``t/v/e`` text format into the workload/benchmark machinery
   (e.g. the paper's original data graphs, if you have them);
2. :func:`repro.bench.profile_workload` — measure how *order-sensitive*
   each query is before spending training budget on it.

Usage::

    python examples/custom_dataset_profiling.py [graph_file]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import save_graph
from repro.bench import profile_workload
from repro.datasets import dataset_stats, load_dataset, query_workload, register_graph_file
from repro.graphs import chung_lu, deduplicate_queries


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        # No file supplied: synthesize a small e-commerce-style graph
        # (items/users/tags as labels) and save it as the custom input.
        graph = chung_lu(2500, 7.0, 12, exponent=2.4, seed=99)
        path = Path(tempfile.mkdtemp()) / "custom.graph"
        save_graph(graph, path)
        print(f"(no input file given; synthesized {graph} at {path})")

    spec = register_graph_file(
        "my-graph", path, query_sizes=(4, 8), default_query_size=8,
        overwrite=True,
    )
    data = load_dataset("my-graph")
    stats = dataset_stats("my-graph")
    print(f"registered dataset {spec.name!r}: {data}\n")

    workload = query_workload("my-graph", 8, count=10, seed=0)
    queries = deduplicate_queries(list(workload.all_queries))
    print(f"workload Q8: {len(workload.all_queries)} queries, "
          f"{len(queries)} after WL-hash de-duplication\n")

    profiles = profile_workload(
        queries, data, stats, match_limit=5_000, time_limit=2.0
    )
    print(f"{'q':>3} | {'|C| min..max':>12} | {'est. cost':>10} | "
          f"{'#enum (ri/gql/random)':>24} | {'CS space':>9} | sensitivity")
    for i, profile in enumerate(profiles):
        measured = "/".join(
            str(profile.measured_enum.get(k, "-"))
            for k in ("ri", "gql", "random")
        )
        print(f"{i:>3} | {profile.min_candidates:>5}..{profile.max_candidates:<5} | "
              f"{profile.estimated_cost:10.2e} | {measured:>24} | "
              f"{profile.candidate_space_bytes / 1024:7.1f}kB | "
              f"{profile.order_sensitivity:5.1f}x")

    total_space = sum(p.candidate_space_bytes for p in profiles)
    print(f"\nflat CandidateSpace footprint across the workload: "
          f"{total_space / 1024:.1f} kB (per-edge index, counted once — "
          "no double-charged frozenset views)")

    hardest = max(profiles, key=lambda p: p.order_sensitivity)
    print(f"\nmost order-sensitive query: {hardest.order_sensitivity:.1f}x spread "
          "between the best and worst tested ordering — queries like this "
          "are where a learned ordering pays off.")


if __name__ == "__main__":
    main()
