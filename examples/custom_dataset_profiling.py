#!/usr/bin/env python3
"""Bring-your-own-graph: register a custom dataset and profile queries.

The paper's pipeline is dataset-agnostic; this example shows the two
extension points a downstream user needs:

1. :func:`repro.datasets.register_graph_file` — plug any labeled graph in
   the ``t/v/e`` text format into the workload/benchmark machinery
   (e.g. the paper's original data graphs, if you have them);
2. the :class:`repro.Matcher` planning surface — every
   :class:`repro.QueryPlan` already carries the profiling payload
   (candidate counts, static cost estimate, candidate-space footprint,
   plan-build time), so measuring how *order-sensitive* a query is means
   re-planning and executing against the same prepared state — no
   separate profiling pass.

Usage::

    python examples/custom_dataset_profiling.py [graph_file]
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro import Matcher, save_graph
from repro.datasets import dataset_stats, load_dataset, query_workload, register_graph_file
from repro.graphs import chung_lu, deduplicate_queries
from repro.matching import RandomOrderer


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        # No file supplied: synthesize a small e-commerce-style graph
        # (items/users/tags as labels) and save it as the custom input.
        graph = chung_lu(2500, 7.0, 12, exponent=2.4, seed=99)
        path = Path(tempfile.mkdtemp()) / "custom.graph"
        save_graph(graph, path)
        print(f"(no input file given; synthesized {graph} at {path})")

    spec = register_graph_file(
        "my-graph", path, query_sizes=(4, 8), default_query_size=8,
        overwrite=True,
    )
    data = load_dataset("my-graph")
    stats = dataset_stats("my-graph")
    print(f"registered dataset {spec.name!r}: {data}\n")

    workload = query_workload("my-graph", 8, count=10, seed=0)
    queries = deduplicate_queries(list(workload.all_queries))
    print(f"workload Q8: {len(workload.all_queries)} queries, "
          f"{len(queries)} after WL-hash de-duplication\n")

    # Prepare once; plan each query once.  The plan *is* the profile:
    # counts, estimated cost, candidate-space bytes and build time all
    # ride on it — nothing is re-measured afterwards.  The enumerator
    # backend is selectable the same way the benchmark suite selects it,
    # and the header names the one that actually ran so A/B profiles
    # stay unambiguous.
    backend = os.environ.get("REPRO_BENCH_ENUM_STRATEGY", "iterative")
    matcher = Matcher(data, filter="gql", orderer="ri", enumerator=backend,
                      match_limit=5_000, time_limit=2.0, stats=stats)
    plans = [matcher.plan(q) for q in queries]
    print(f"profiling with enumerator backend: {matcher.enumerator_name!r}\n")

    print(f"{'q':>3} | {'|C| min..max':>12} | {'est. cost':>10} | "
          f"{'#enum (ri/gql/random)':>24} | {'CS space':>9} | {'plan':>7} | sensitivity")
    total_space = 0
    sensitivities = []
    for i, plan in enumerate(plans):
        counts = plan.candidate_counts
        if plan.matchable:
            # Order sensitivity: re-plan the same Phase (1) artifacts
            # under alternative orderers and compare measured #enum.
            measured = {"ri": matcher.execute(plan).num_enumerations}
            # A seeded instance keeps the random column reproducible;
            # "gql" goes through the registry as a plain string.
            for name, orderer in (("gql", "gql"), ("random", RandomOrderer(seed=0))):
                replanned = matcher.replan(plan, orderer)
                measured[name] = matcher.execute(replanned).num_enumerations
            shown = "/".join(str(measured[k]) for k in ("ri", "gql", "random"))
            sensitivity = max(measured.values()) / max(min(measured.values()), 1)
            sensitivities.append(sensitivity)
            sens_text = f"{sensitivity:5.1f}x"
        else:
            shown, sens_text = "-/-/-", "    -"
        # The footprint is recorded on the plan, so the dense per-edge
        # index itself can be dropped — at most one query's space stays
        # resident while the workload is profiled.
        plan.release_space()
        total_space += plan.candidate_space_bytes
        print(f"{i:>3} | {min(counts):>5}..{max(counts):<5} | "
              f"{plan.estimated_cost:10.2e} | {shown:>24} | "
              f"{plan.candidate_space_bytes / 1024:7.1f}kB | "
              f"{plan.build_time * 1e3:5.1f}ms | {sens_text}")

    print(f"\nflat CandidateSpace footprint across the workload: "
          f"{total_space / 1024:.1f} kB (per-edge index, read off the plans — "
          "no double-charged frozenset views)")

    if sensitivities:
        hardest = max(sensitivities)
        print(f"\nmost order-sensitive query: {hardest:.1f}x spread "
              "between the best and worst tested ordering — queries like this "
              "are where a learned ordering pays off.")


if __name__ == "__main__":
    main()
