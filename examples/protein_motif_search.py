#!/usr/bin/env python3
"""Protein-interaction motif search (biology scenario).

The paper motivates subgraph matching with graphlet/motif analysis in
protein-protein interaction networks [2].  This example searches the
(synthesized) Yeast PPI network for classic interaction motifs —
triangles, stars and a "bridged complex" — with hand-written query
graphs, and shows how much the matching order matters even for small
motifs by comparing several ordering strategies on the same pipeline.

Usage::

    python examples/protein_motif_search.py
"""

from __future__ import annotations

import numpy as np

from repro import Enumerator, GQLFilter, Graph, MatchingContext, dataset_stats, load_dataset
from repro.matching import GQLOrderer, RandomOrderer, RIOrderer, VF2PPOrderer


def motif_catalogue(data: Graph) -> dict[str, Graph]:
    """Small interaction motifs over the dataset's most common labels."""
    # Use the three most frequent labels so motifs actually occur.
    labels = sorted(
        data.distinct_labels(), key=data.label_frequency, reverse=True
    )[:3]
    a, b, c = (labels + labels)[:3]
    return {
        # Three proteins all pairwise interacting (complex core).
        "triangle": Graph([a, b, c], [(0, 1), (1, 2), (0, 2)]),
        # One hub protein with three partners (signalling hub).
        "star-3": Graph([a, b, b, c], [(0, 1), (0, 2), (0, 3)]),
        # Two complexes sharing a bridge protein.
        "bridged-complex": Graph(
            [a, b, c, a, b],
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)],
        ),
        # A 4-cycle: alternative interaction pathway.
        "square": Graph([a, b, a, b], [(0, 1), (1, 2), (2, 3), (3, 0)]),
    }


def main() -> None:
    data = load_dataset("yeast")
    stats = dataset_stats("yeast")
    print(f"searching motifs in {data} (synthesized Yeast PPI stand-in)\n")

    gql = GQLFilter()
    enumerator = Enumerator(match_limit=50_000, time_limit=10.0)
    orderers = {
        "ri": RIOrderer(),
        "vf2pp": VF2PPOrderer(),
        "gql": GQLOrderer(),
        "random": RandomOrderer(seed=0),
    }

    for motif_name, motif in motif_catalogue(data).items():
        candidates = gql.filter(motif, data, stats)
        if candidates.has_empty():
            print(f"{motif_name:>16}: no candidates — motif absent")
            continue
        print(f"{motif_name:>16}: |V|={motif.num_vertices} "
              f"|E|={motif.num_edges} candidate sizes={candidates.sizes()}")
        rng = np.random.default_rng(0)
        # One context per motif: all compared orders reuse one
        # CandidateSpace build instead of paying it per enumeration.
        # Built eagerly so the first orderer's printed time is not
        # inflated by the shared Phase (1) index build.
        context = MatchingContext(motif, data, candidates, stats)
        context.ensure_space()
        for name, orderer in orderers.items():
            order = orderer.order_context(context, rng)
            result = enumerator.run_context(context, order)
            status = "" if result.complete else " (truncated)"
            print(f"{'':>16}  {name:>6}: {result.num_matches:>7} matches, "
                  f"#enum={result.num_enumerations:>8}, "
                  f"{result.elapsed * 1e3:7.1f}ms{status}")
        print()


if __name__ == "__main__":
    main()
