#!/usr/bin/env python3
"""Protein-interaction motif search (biology scenario).

The paper motivates subgraph matching with graphlet/motif analysis in
protein-protein interaction networks [2].  This example searches the
(synthesized) Yeast PPI network for classic interaction motifs —
triangles, stars and a "bridged complex" — through the prepare-once
facade: one :class:`repro.Matcher` binds the network, each motif is
planned once, alternative orderings are compared by *re-planning* over
the same Phase (1) artifacts (one shared candidate space per motif), and
the first few concrete embeddings are pulled lazily from
:meth:`Matcher.stream` without running the search to completion.

Usage::

    python examples/protein_motif_search.py
"""

from __future__ import annotations

import numpy as np

from repro import Graph, Matcher, dataset_stats, load_dataset


def motif_catalogue(data: Graph) -> dict[str, Graph]:
    """Small interaction motifs over the dataset's most common labels."""
    # Use the three most frequent labels so motifs actually occur.
    labels = sorted(
        data.distinct_labels(), key=data.label_frequency, reverse=True
    )[:3]
    a, b, c = (labels + labels)[:3]
    return {
        # Three proteins all pairwise interacting (complex core).
        "triangle": Graph([a, b, c], [(0, 1), (1, 2), (0, 2)]),
        # One hub protein with three partners (signalling hub).
        "star-3": Graph([a, b, b, c], [(0, 1), (0, 2), (0, 3)]),
        # Two complexes sharing a bridge protein.
        "bridged-complex": Graph(
            [a, b, c, a, b],
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)],
        ),
        # A 4-cycle: alternative interaction pathway.
        "square": Graph([a, b, a, b], [(0, 1), (1, 2), (2, 3), (3, 0)]),
    }


def main() -> None:
    data = load_dataset("yeast")
    stats = dataset_stats("yeast")
    print(f"searching motifs in {data} (synthesized Yeast PPI stand-in)\n")

    # Prepare once: GQL filter + RI ordering + iterative enumeration,
    # bound to the PPI network.  Every motif below reuses this state.
    matcher = Matcher(data, filter="gql", orderer="ri",
                      match_limit=50_000, time_limit=10.0, stats=stats)
    compared_orderers = ("ri", "vf2pp", "gql", "random")

    for motif_name, motif in motif_catalogue(data).items():
        rng = np.random.default_rng(0)
        # One plan per motif: all compared orders re-plan over the same
        # Phase (1) artifacts, sharing a single CandidateSpace build.
        plan = matcher.plan(motif, rng)
        if not plan.matchable:
            print(f"{motif_name:>16}: no candidates — motif absent")
            continue
        print(f"{motif_name:>16}: |V|={motif.num_vertices} "
              f"|E|={motif.num_edges} "
              f"candidate sizes={list(plan.candidate_counts)}")
        for name in compared_orderers:
            replanned = plan if name == "ri" else matcher.replan(plan, name, rng)
            result = matcher.execute(replanned)
            status = "" if result.solved and not result.enumeration.limit_reached \
                else " (truncated)"
            print(f"{'':>16}  {name:>6}: {result.num_matches:>7} matches, "
                  f"#enum={result.num_enumerations:>8}, "
                  f"{result.enum_time * 1e3:7.1f}ms{status}")
        # Lazy inspection: pull the first three concrete embeddings
        # without finishing the search.
        first = list(matcher.stream_plan(plan, limit=3))
        print(f"{'':>16}  first embeddings: "
              + "; ".join(str(list(m)) for m in first))
        print()


if __name__ == "__main__":
    main()
