#!/usr/bin/env python3
"""HTTP serving with durable warm starts (the ``repro.server`` tier).

Stands the asyncio HTTP server up in-process on a free port, backed by
a sqlite plan store, and walks the serving story end to end over the
wire a real client would use (``http.client``):

* ``POST /match`` — cold request plans Phases (1)–(3); an isomorphic
  re-ask is a plan-cache hit with bit-identical outcome;
* **durable warm start** — a *fresh* service over the same plan store
  (a simulated process restart: empty memory cache) still serves the
  isomorph as a cache hit, re-attached from sqlite;
* ``POST /match/stream`` — chunked NDJSON: the first embedding arrives
  while enumeration is still running, so time-to-first-match is far
  below the full stream time;
* ``GET /stats`` — the operational snapshot (latency percentiles,
  cache tiers, per-phase seconds).

Usage::

    python examples/http_serving.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_dataset
from repro.graphs import extract_query, relabel_graph
from repro.server import BackgroundServer
from repro.service import MatchRequest, MatchService


def post_match(address, request: MatchRequest) -> dict:
    """One ``POST /match`` over a fresh connection."""
    conn = http.client.HTTPConnection(*address, timeout=60)
    try:
        conn.request(
            "POST", "/match", body=json.dumps(request.to_dict()),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200, payload
        return payload
    finally:
        conn.close()


def stream_match(address, request: MatchRequest) -> tuple[float, float, int]:
    """``POST /match/stream``; (first-embedding s, total s, embeddings)."""
    conn = http.client.HTTPConnection(*address, timeout=60)
    try:
        start = time.perf_counter()
        conn.request(
            "POST", "/match/stream", body=json.dumps(request.to_dict()),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()  # http.client decodes the chunking
        first_s = None
        count = 0
        while True:
            line = response.readline()
            if not line:
                break
            payload = json.loads(line)
            if "match" in payload:
                count += 1
                if first_s is None:
                    first_s = time.perf_counter() - start
        return first_s, time.perf_counter() - start, count
    finally:
        conn.close()


def main() -> None:
    data = load_dataset("citeseer")
    rng = np.random.default_rng(9)
    query = extract_query(data, 6, rng)
    isomorph = relabel_graph(query, rng.permutation(query.num_vertices))

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "plans.sqlite"

        with BackgroundServer(
            MatchService(catalog=["citeseer"], plan_store=store_path)
        ) as server:
            print(f"serving citeseer at {server.url} "
                  f"(plan store: {store_path.name})\n")
            request = MatchRequest(
                "citeseer", query, match_limit=20_000, record_matches=True
            )
            cold = post_match(server.address, request)
            print(f"cold request:     {cold['num_matches']:>6} matches, "
                  f"#enum={cold['num_enumerations']}, "
                  f"cached={cold['cache_hit']}")
            warm = post_match(
                server.address,
                MatchRequest("citeseer", isomorph, match_limit=20_000,
                             record_matches=True),
            )
            identical = (
                warm["num_matches"] == cold["num_matches"]
                and warm["num_enumerations"] == cold["num_enumerations"]
            )
            print(f"isomorph request: {warm['num_matches']:>6} matches, "
                  f"#enum={warm['num_enumerations']}, "
                  f"cached={warm['cache_hit']}; "
                  f"outcome identical: {identical}")

            # Streaming: embeddings are flushed per chunk as the
            # suspendable engine produces them.
            first_s, total_s, count = stream_match(
                server.address,
                MatchRequest("citeseer", query, match_limit=20_000),
            )
            print(f"\nstreaming: first embedding after {first_s * 1e3:.1f}ms, "
                  f"all {count} embeddings after {total_s * 1e3:.1f}ms "
                  f"(first well before full: {first_s < total_s})")

        # "Process restart": a brand-new service (empty memory cache)
        # over the same sqlite file — the warm set survives.
        with BackgroundServer(
            MatchService(catalog=["citeseer"], plan_store=store_path)
        ) as server:
            reborn = post_match(
                server.address,
                MatchRequest("citeseer", isomorph, match_limit=20_000,
                             record_matches=True),
            )
            bit_identical = reborn["matches"] == warm["matches"]
            print(f"\nrestarted on the same store: cached={reborn['cache_hit']} "
                  f"(warm start from sqlite), "
                  f"match sequence identical: {bit_identical}")

            conn = http.client.HTTPConnection(*server.address, timeout=60)
            try:
                conn.request("GET", "/stats")
                stats = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            cache = stats["cache"]
            print(f"server stats: {stats['requests']} request(s), "
                  f"cache hits {cache['hits']} "
                  f"(from store: {cache['store_hits']}), "
                  f"plan-store rows {stats['plan_store']['rows']}, "
                  f"p95 latency {stats['latency_p95_s'] * 1e3:.1f}ms")


if __name__ == "__main__":
    main()
