#!/usr/bin/env python3
"""Incremental training and model persistence (operations scenario).

Shows the workflow the paper's Sec. III-F/IV-F recommends for production:
fully train the ordering policy once on a cheap small-query set, persist
it, then fine-tune it incrementally for a new (larger) query size at a
fraction of the cost — and demonstrate save/load round-tripping of the
trained model.

Usage::

    python examples/train_and_persist.py [model_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    RLQVOConfig,
    RLQVOTrainer,
    dataset_stats,
    load_dataset,
    load_model,
    query_workload,
    save_model,
)
from repro.core.orderer import RLQVOOrderer
from repro.matching import Enumerator, GQLFilter


def evaluate(orderer, data, stats, queries, label: str) -> None:
    gql = GQLFilter()
    enumerator = Enumerator(match_limit=5_000, time_limit=2.0)
    total = 0
    for query in queries:
        candidates = gql.filter(query, data, stats)
        if candidates.has_empty():
            continue
        order = orderer.order(query, data, candidates, stats)
        total += enumerator.run(query, data, candidates, order).num_enumerations
    print(f"  {label}: total #enum on eval queries = {total}")


def main() -> None:
    model_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.mkdtemp()) / "rlqvo-wordnet"
    )
    dataset = "wordnet"
    data = load_dataset(dataset)
    stats = dataset_stats(dataset)
    small = query_workload(dataset, size=8, count=10, seed=2)
    target = query_workload(dataset, size=16, count=10, seed=3)

    config = RLQVOConfig(
        epochs=8,
        incremental_epochs=3,
        hidden_dim=32,
        train_match_limit=2000,
        train_time_limit=1.0,
        seed=2,
    )
    trainer = RLQVOTrainer(data, config, stats=stats)

    print(f"[1/4] pretraining on {small.name} ({len(small.train)} queries)")
    pre_history = trainer.train(list(small.train))
    print(f"      {pre_history.total_time:.1f}s")
    evaluate(trainer.make_orderer(), data, stats, target.eval,
             "pretrained-only on Q16")

    print(f"[2/4] incremental fine-tune on {target.name} "
          f"({config.incremental_epochs} epochs)")
    incr_history = trainer.train(
        list(target.train), epochs=config.incremental_epochs
    )
    print(f"      {incr_history.total_time:.1f}s "
          f"(vs {pre_history.total_time:.1f}s pretraining)")
    evaluate(trainer.make_orderer(), data, stats, target.eval,
             "incrementally tuned on Q16")

    print(f"[3/4] saving model to {model_dir}")
    save_model(trainer.policy, model_dir)

    print("[4/4] loading model back and re-evaluating")
    loaded = load_model(model_dir)
    reloaded = RLQVOOrderer(loaded, trainer.feature_builder)
    evaluate(reloaded, data, stats, target.eval, "reloaded model  on Q16")

    sample = target.eval[0]
    assert reloaded.order(sample, data) == trainer.make_orderer().order(sample, data)
    print("\nreloaded model reproduces the trained model's orders exactly.")


if __name__ == "__main__":
    main()
