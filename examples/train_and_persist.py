#!/usr/bin/env python3
"""Incremental training and model persistence (operations scenario).

Shows the workflow the paper's Sec. III-F/IV-F recommends for production:
fully train the ordering policy once on a cheap small-query set, persist
it, then fine-tune it incrementally for a new (larger) query size at a
fraction of the cost — and demonstrate save/load round-tripping through
the facade: ``Matcher(data, orderer="rl", model=<dir>)`` loads the saved
model exactly once at construction and then answers any number of
queries against it.

Usage::

    python examples/train_and_persist.py [model_dir]

Set ``REPRO_EXAMPLES_EPOCHS`` to shrink the training budget (CI smoke).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro import (
    Matcher,
    RLQVOConfig,
    RLQVOTrainer,
    dataset_stats,
    load_dataset,
    query_workload,
    save_model,
)


def evaluate(matcher: Matcher, queries, label: str) -> None:
    """Total #enum of a prepared matcher over the evaluation queries."""
    total = sum(r.num_enumerations for r in matcher.match_many(queries))
    print(f"  {label}: total #enum on eval queries = {total}")


def main() -> None:
    model_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.mkdtemp()) / "rlqvo-wordnet"
    )
    dataset = "wordnet"
    data = load_dataset(dataset)
    stats = dataset_stats(dataset)
    small = query_workload(dataset, size=8, count=10, seed=2)
    target = query_workload(dataset, size=16, count=10, seed=3)

    config = RLQVOConfig(
        epochs=int(os.environ.get("REPRO_EXAMPLES_EPOCHS", 8)),
        incremental_epochs=3,
        hidden_dim=32,
        train_match_limit=2000,
        train_time_limit=1.0,
        seed=2,
    )
    trainer = RLQVOTrainer(data, config, stats=stats)

    def trained_matcher() -> Matcher:
        """Current policy behind a prepared facade (GQL + iterative)."""
        return Matcher(data, filter="gql", orderer=trainer.make_orderer(),
                       match_limit=5_000, time_limit=2.0, stats=stats)

    print(f"[1/4] pretraining on {small.name} ({len(small.train)} queries)")
    pre_history = trainer.train(list(small.train))
    print(f"      {pre_history.total_time:.1f}s")
    evaluate(trained_matcher(), target.eval, "pretrained-only on Q16")

    print(f"[2/4] incremental fine-tune on {target.name} "
          f"({config.incremental_epochs} epochs)")
    incr_history = trainer.train(
        list(target.train), epochs=config.incremental_epochs
    )
    print(f"      {incr_history.total_time:.1f}s "
          f"(vs {pre_history.total_time:.1f}s pretraining)")
    evaluate(trained_matcher(), target.eval, "incrementally tuned on Q16")

    print(f"[3/4] saving model to {model_dir}")
    save_model(trainer.policy, model_dir)

    print("[4/4] loading model back and re-evaluating")
    # The facade loads the saved policy once, at construction; every
    # query afterwards reuses the loaded model and the shared stats.
    reloaded = Matcher(data, filter="gql", orderer="rl", model=model_dir,
                       match_limit=5_000, time_limit=2.0, stats=stats)
    evaluate(reloaded, target.eval, "reloaded model  on Q16")

    sample = target.eval[0]
    assert reloaded.plan(sample).order == trained_matcher().plan(sample).order
    print("\nreloaded model reproduces the trained model's orders exactly.")


if __name__ == "__main__":
    main()
