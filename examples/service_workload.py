#!/usr/bin/env python3
"""A serving workload through :class:`repro.MatchService` (deployment scenario).

The north-star deployment answers heavy query traffic against several
long-lived data graphs at once.  This example stands one
:class:`~repro.service.MatchService` up over two catalog datasets, then
replays a repeated workload the way real clients produce it — the same
query shapes recurring under different vertex numberings — and shows
what the service layer buys:

* the **multi-dataset catalog** routes each request by dataset name,
  constructing per-dataset matchers lazily on first traffic;
* the **canonical-fingerprint plan cache** collapses every isomorph of
  a seen query onto one entry, so the second wave of traffic skips the
  filtering and ordering phases entirely (bit-identical results,
  measured speedup);
* **concurrent execution**: the same batch fans out over a thread pool
  and returns answers in request order;
* the **stats snapshot** and **explicit invalidation** give the
  operational view a service needs.

Usage::

    python examples/service_workload.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MatchRequest, MatchService
from repro.graphs import Graph, extract_query, relabel_graph


def isomorph(query: Graph, rng: np.random.Generator) -> Graph:
    """The same query as a client would resend it: relabeled vertices."""
    return relabel_graph(query, rng.permutation(query.num_vertices))


def main() -> None:
    # One service over two Table II datasets; matchers and statistics
    # are built lazily, per dataset, on first request.
    service = MatchService(catalog=["citeseer", "yeast"], max_workers=4)
    print(f"service catalog: {', '.join(service.catalog.names())}\n")

    rng = np.random.default_rng(7)
    from repro.datasets import load_dataset

    base_queries = {
        name: [extract_query(load_dataset(name), 6, rng) for _ in range(4)]
        for name in ("citeseer", "yeast")
    }

    def wave(relabel: bool) -> list[MatchRequest]:
        """One wave of traffic: every query against its dataset."""
        requests = []
        for dataset, queries in base_queries.items():
            for i, query in enumerate(queries):
                target = isomorph(query, rng) if relabel else query
                requests.append(
                    MatchRequest(dataset, target, match_limit=20_000,
                                 tag=f"{dataset}/q{i}")
                )
        return requests

    # Wave 1: cold — every plan is built (filter + order phases paid).
    start = time.perf_counter()
    cold = service.submit_many(wave(relabel=False))
    cold_s = time.perf_counter() - start
    # Wave 2: the same query shapes return as isomorphs; the canonical
    # fingerprint collapses them onto the cached plans.
    start = time.perf_counter()
    warm = service.submit_many(wave(relabel=True))
    warm_s = time.perf_counter() - start

    print("request  | dataset  |  matches |    #enum | cached")
    for response in warm:
        print(f"{response.tag:>8} | {response.dataset:<8} "
              f"| {response.num_matches:>8} | {response.num_enumerations:>8} "
              f"| {'hit' if response.cache_hit else 'cold'}")

    hits = sum(r.cache_hit for r in warm)
    identical = all(
        (c.num_matches, c.num_enumerations) == (w.num_matches, w.num_enumerations)
        for c, w in zip(cold, warm)
    )
    print(f"\nwarm wave: {hits}/{len(warm)} cache hits; "
          f"outcomes identical to the cold wave: {identical}")
    print(f"wave wall-clock: cold {cold_s * 1e3:.1f}ms -> warm {warm_s * 1e3:.1f}ms")

    stats = service.stats()
    print(f"service stats: {stats.requests} requests, "
          f"cache hit rate {stats.cache_hit_rate:.0%}, "
          f"planning {stats.filter_time_s + stats.order_time_s:.3f}s, "
          f"enumeration {stats.enum_time_s:.3f}s, "
          f"p95 latency {stats.latency_p95_s * 1e3:.1f}ms")

    # Operational control: drop one dataset's plans (e.g. after its
    # graph was rebuilt); the next request replans from scratch.
    dropped = service.invalidate("citeseer")
    follow_up = service.submit(
        MatchRequest("citeseer", base_queries["citeseer"][0])
    )
    print(f"invalidated {dropped} citeseer plans; "
          f"follow-up request cached={follow_up.cache_hit}")


if __name__ == "__main__":
    main()
