#!/usr/bin/env python3
"""Partitioned matching: shard a data graph, match, and stay bit-identical.

A single flat candidate space sizes with the whole data graph; an
edge-cut :class:`repro.graphs.ShardedGraph` bounds the *per-shard* peak
instead — the figure a multiprocess placement scheduler would budget
per worker.  This example partitions the (synthesized) CiteSeer graph,
answers the same query workload unsharded and with 4 degree-balanced
shards, and shows the contract the matching layer guarantees:

* the match *sequences* (not just sets) are identical — per-shard runs
  merge back into the canonical global enumeration order;
* the peak per-shard candidate space is a fraction of the unsharded
  footprint, because halos are restricted to global candidates;
* per-shard plans expose owned/halo sizes and footprints for placement.

Usage::

    python examples/sharded_matching.py
"""

from __future__ import annotations

import numpy as np

from repro import Matcher, load_dataset
from repro.graphs import ShardedGraph, extract_query

NUM_SHARDS = 4


def main() -> None:
    data = load_dataset("citeseer")
    sharded = ShardedGraph(data, NUM_SHARDS, mode="degree")
    print(f"partitioned matching on {data} (synthesized CiteSeer stand-in)")
    print(
        f"layout: {NUM_SHARDS} degree-balanced shards, ownership ranges "
        + " ".join(f"[{lo},{hi})" for lo, hi in sharded.ranges)
    )

    rng = np.random.default_rng(7)
    queries = [extract_query(data, 6, rng) for _ in range(4)]

    # Two matchers over the same graph: one shard of truth vs the cut.
    unsharded = Matcher(data, match_limit=None, record_matches=True)
    cut = Matcher(sharded, match_limit=None, record_matches=True)

    print(
        "\nquery | matches | agree | unsharded space | peak shard space | x smaller"
    )
    print("------+---------+-------+-----------------+------------------+----------")
    all_agree = True
    for i, query in enumerate(queries):
        base_plan = unsharded.plan(query)
        cut_plan = cut.plan(query)
        base = unsharded.execute(base_plan)
        result = cut.execute(cut_plan)
        agree = base.enumeration.matches == result.enumeration.matches
        all_agree = all_agree and agree
        peak = cut_plan.peak_shard_space_bytes
        ratio = base_plan.candidate_space_bytes / max(peak, 1)
        print(
            f"   q{i} | {base.num_matches:7d} | {'yes' if agree else 'NO':>5} "
            f"| {base_plan.candidate_space_bytes / 1024:12.1f} kB "
            f"| {peak / 1024:13.1f} kB | {ratio:8.1f}x"
        )

    # Placement detail for the last query: what each worker would hold.
    print("\nper-shard detail (last query):")
    print("shard |  owned | local |V| |  halo | root cands | space bytes")
    print("------+--------+-----------+-------+------------+------------")
    for sp in cut_plan.shard_plans:
        lo, hi = sp.owned
        print(
            f"   s{sp.shard_id} | {hi - lo:6d} | {sp.num_vertices:9d} "
            f"| {sp.halo:5d} | {sp.root_candidates:10d} "
            f"| {sp.candidate_space_bytes:11d}"
        )
    outcomes = result.shards or ()
    merged = sum(o.num_matches for o in outcomes)
    print(
        f"\nmerge: {merged} per-shard matches -> {result.num_matches} global "
        f"(merge overhead {result.merge_time * 1e3:.2f} ms)"
    )
    print(f"all queries: sharded matches identical to unsharded: {all_agree}")


if __name__ == "__main__":
    main()
