#!/usr/bin/env python3
"""Community-pattern queries on a social network (data-analytics scenario).

Social networks are one of the paper's headline workloads (DBLP, Youtube).
This example extracts realistic query patterns *from* the synthesized DBLP
graph — collaboration cliques, co-author chains — then benchmarks the full
method matrix of the paper's Fig. 3 (QSI, RI, VF2++, GQL, Hybrid and a
freshly trained RL-QVO) on those queries.  Each method is spelled as a
pair of *registry strings* (filter name, orderer name) resolved by the
:class:`repro.Matcher` facade; one prepared matcher per method answers
the whole workload via ``match_many``.

Usage::

    python examples/social_network_analysis.py

Set ``REPRO_EXAMPLES_EPOCHS`` to shrink the training budget (CI smoke).
"""

from __future__ import annotations

import os
import time

from repro import Matcher, RLQVOConfig, RLQVOTrainer, dataset_stats, load_dataset
from repro.datasets import query_workload

#: Fig. 3 method matrix as plain registry strings — exactly what a config
#: file or CLI flag would carry ("rlqvo" swaps in the trained orderer).
#: The benchmark harness owns the canonical mapping
#: (``repro.bench.method_matcher``); this table mirrors it to show the
#: string-first spelling.
METHOD_COMPONENTS = {
    "qsi": ("ldf", "qsi"),
    "ri": ("ldf", "ri"),
    "vf2pp": ("ldf", "vf2pp"),
    "gql": ("gql", "gql"),
    "hybrid": ("gql", "ri"),
    "rlqvo": ("gql", None),  # orderer: the trained policy
}


def main() -> None:
    dataset = "dblp"
    data = load_dataset(dataset)
    stats = dataset_stats(dataset)
    print(f"social graph: {data} (synthesized DBLP stand-in)")

    # Q16 collaboration patterns, 6 to train the learned orderer, 6 to test.
    workload = query_workload(dataset, size=16, count=12, seed=1)
    print(f"workload: {workload.name} — {len(workload.train)} train / "
          f"{len(workload.eval)} eval collaboration patterns\n")

    print("training RL-QVO ordering policy ...")
    trainer = RLQVOTrainer(
        data,
        RLQVOConfig(
            epochs=int(os.environ.get("REPRO_EXAMPLES_EPOCHS", 20)),
            rollouts_per_query=2,
            hidden_dim=32,
            train_match_limit=2000,
            train_time_limit=1.0,
            seed=1,
        ),
        stats=stats,
    )
    start = time.perf_counter()
    trainer.train(list(workload.train))
    print(f"... done in {time.perf_counter() - start:.1f}s\n")

    print(f"{'method':>8} | {'total time':>10} | {'total #enum':>12} | unsolved")
    for method, (filter_name, orderer_name) in METHOD_COMPONENTS.items():
        matcher = Matcher(
            data,
            filter=filter_name,
            orderer=orderer_name if orderer_name else trainer.make_orderer(),
            match_limit=10_000,
            time_limit=3.0,
            stats=stats,
        )
        total_time = 0.0
        total_enum = 0
        unsolved = 0
        for result in matcher.match_many(workload.eval):
            total_time += result.total_time if result.solved else 3.0
            total_enum += result.num_enumerations
            unsolved += 0 if result.solved else 1
        print(f"{method:>8} | {total_time:9.2f}s | {total_enum:>12} | {unsolved}")

    print("\n(The shared enumeration procedure means the #enum column "
          "directly compares matching-order quality.)")


if __name__ == "__main__":
    main()
