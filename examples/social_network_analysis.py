#!/usr/bin/env python3
"""Community-pattern queries on a social network (data-analytics scenario).

Social networks are one of the paper's headline workloads (DBLP, Youtube).
This example extracts realistic query patterns *from* the synthesized DBLP
graph — collaboration cliques, co-author chains — then benchmarks the full
method matrix of the paper's Fig. 3 (QSI, RI, VF2++, GQL, Hybrid and a
freshly trained RL-QVO) on those queries.

Usage::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

import time

from repro import RLQVOConfig, RLQVOTrainer, dataset_stats, load_dataset
from repro.bench import method_engine
from repro.datasets import query_workload
from repro.matching import Enumerator


def main() -> None:
    dataset = "dblp"
    data = load_dataset(dataset)
    stats = dataset_stats(dataset)
    print(f"social graph: {data} (synthesized DBLP stand-in)")

    # Q16 collaboration patterns, 6 to train the learned orderer, 6 to test.
    workload = query_workload(dataset, size=16, count=12, seed=1)
    print(f"workload: {workload.name} — {len(workload.train)} train / "
          f"{len(workload.eval)} eval collaboration patterns\n")

    print("training RL-QVO ordering policy ...")
    trainer = RLQVOTrainer(
        data,
        RLQVOConfig(
            epochs=20,
            rollouts_per_query=2,
            hidden_dim=32,
            train_match_limit=2000,
            train_time_limit=1.0,
            seed=1,
        ),
        stats=stats,
    )
    start = time.perf_counter()
    trainer.train(list(workload.train))
    print(f"... done in {time.perf_counter() - start:.1f}s\n")

    enumerator = Enumerator(match_limit=10_000, time_limit=3.0)
    methods = ("qsi", "ri", "vf2pp", "gql", "hybrid", "rlqvo")
    print(f"{'method':>8} | {'total time':>10} | {'total #enum':>12} | unsolved")
    for method in methods:
        orderer = trainer.make_orderer() if method == "rlqvo" else None
        engine = method_engine(method, enumerator, orderer)
        total_time = 0.0
        total_enum = 0
        unsolved = 0
        for query in workload.eval:
            result = engine.run(query, data, stats)
            total_time += result.total_time if result.solved else 3.0
            total_enum += result.num_enumerations
            unsolved += 0 if result.solved else 1
        print(f"{method:>8} | {total_time:9.2f}s | {total_enum:>12} | {unsolved}")

    print("\n(The shared enumeration procedure means the #enum column "
          "directly compares matching-order quality.)")


if __name__ == "__main__":
    main()
